// Golden-run regression suite: every factory scheduler is run over a small
// fixed scenario set (benign and faulted) and its outcome digest — slot
// count, energy split, rebuffering, delivered bytes, fairness, completion —
// is compared against the checked-in tests/integration/golden_runs.csv.
// The prediction-assisted EMA adds three rows of its own (benign, faulted,
// and a stale-feedback case with a fault-tracking forecast error model).
//
// The digests pin the numerical behaviour of the whole pipeline (channel
// generation, scheduling, fault injection, transmission, metrics): any
// unintended change to a scheduler decision or an energy/stall formula fails
// here with the exact drifted column. Intentional changes regenerate the
// file via scripts/regen_golden.sh (GOLDEN_REGEN=1 rewrites the CSV in the
// source tree) — review the diff like code.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "baselines/factory.hpp"
#include "common/csv.hpp"
#include "sim/experiment.hpp"
#include "sim/fault.hpp"
#include "sim/simulator.hpp"

#ifndef JSTREAM_GOLDEN_CSV
#error "build must define JSTREAM_GOLDEN_CSV (path to golden_runs.csv)"
#endif

namespace jstream {
namespace {

struct GoldenCase {
  std::string name;
  ScenarioConfig config;
};

std::vector<GoldenCase> golden_cases() {
  // Small enough to run all schedulers in seconds, long enough that sessions
  // finish, tails flush, and the faulted variant exercises all four families.
  ScenarioConfig benign = paper_scenario(/*users=*/6, /*seed=*/20260805);
  benign.video_min_mb = 15.0;
  benign.video_max_mb = 30.0;
  benign.max_slots = 300;

  ScenarioConfig faulted = benign;
  faulted.faults.outage_rate_per_kslot = 8.0;
  faulted.faults.staleness_rate_per_kslot = 12.0;
  faulted.faults.departure_fraction = 0.5;
  faulted.faults.capacity_rate_per_kslot = 6.0;
  faulted.faults.capacity_min_slots = 10;
  faulted.faults.capacity_max_slots = 40;
  faulted.faults.capacity_scale = 0.5;

  return {{"benign", benign}, {"faulted", faulted}};
}

/// Cases for the prediction-assisted scheduler: the two shared cases above
/// plus a stale-feedback-heavy cell whose forecast error model tracks the
/// fault windows (track_fault_staleness) with mild seeded Gaussian noise —
/// the fault layer and the forecast window interacting is exactly what these
/// digests pin. Predictive rows ride on the same CSV; the plain grid's rows
/// stay byte-identical (the predictive scheduler never touches it).
std::vector<GoldenCase> predictive_cases() {
  std::vector<GoldenCase> cases = golden_cases();
  ScenarioConfig stale = cases.front().config;
  stale.faults.staleness_rate_per_kslot = 25.0;
  stale.faults.staleness_min_slots = 5;
  stale.faults.staleness_max_slots = 40;
  stale.forecast.track_fault_staleness = true;
  stale.forecast.sigma_dbm = 3.0;
  cases.push_back({"stale", stale});
  return cases;
}

/// The pinned predictive configuration for the golden rows: a horizon long
/// enough that both deferral and crest credit fire on the 300-slot cases.
SchedulerOptions predictive_golden_options() {
  SchedulerOptions options;
  options.ema_predictive.horizon_slots = 60;
  return options;
}

const std::vector<std::string> kColumns = {
    "case",        "scheduler",  "slots_run",  "trans_mj", "tail_mj",
    "rebuffer_s",  "delivered_kb", "fairness", "completion"};

std::string fmt(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

std::vector<std::string> digest_row(const GoldenCase& golden,
                                    const std::string& scheduler,
                                    const SchedulerOptions& options = {}) {
  const RunMetrics m =
      simulate(golden.config,
               make_scheduler_for_scenario(scheduler, options, golden.config),
               /*keep_series=*/true);
  double delivered_kb = 0.0;
  for (const UserTotals& user : m.per_user) delivered_kb += user.delivered_kb;
  return {golden.name,
          scheduler,
          std::to_string(m.slots_run),
          fmt(m.total_trans_mj()),
          fmt(m.total_tail_mj()),
          fmt(m.total_rebuffer_s()),
          fmt(delivered_kb),
          fmt(m.mean_fairness()),
          fmt(m.completion_rate())};
}

/// Digest doubles must reproduce to round-trip precision; the slack covers
/// only the decimal round trip through the CSV, not behavioural drift.
constexpr double kRelTol = 1e-12;

void expect_cell_matches(const std::string& expected, const std::string& actual,
                         const std::string& column, const std::string& key) {
  if (expected == actual) return;
  const double want = std::strtod(expected.c_str(), nullptr);
  const double got = std::strtod(actual.c_str(), nullptr);
  const double slack = kRelTol * std::max(1.0, std::abs(want));
  EXPECT_LE(std::abs(got - want), slack)
      << key << " drifted in column '" << column << "': golden " << expected
      << ", run " << actual
      << "\nIf the change is intentional, regenerate with scripts/regen_golden.sh "
         "and review the CSV diff.";
}

TEST(GoldenRuns, EveryFactorySchedulerMatchesTheCheckedInDigests) {
  const std::vector<GoldenCase> cases = golden_cases();
  const std::vector<std::string> schedulers = scheduler_names();

  const std::vector<GoldenCase> pred_cases = predictive_cases();
  const SchedulerOptions pred_options = predictive_golden_options();

  if (std::getenv("GOLDEN_REGEN") != nullptr) {
    CsvWriter writer(JSTREAM_GOLDEN_CSV, kColumns);
    for (const GoldenCase& golden : cases) {
      for (const std::string& scheduler : schedulers) {
        writer.row(digest_row(golden, scheduler));
      }
    }
    for (const GoldenCase& golden : pred_cases) {
      writer.row(digest_row(golden, "ema-predictive", pred_options));
    }
    GTEST_SKIP() << "GOLDEN_REGEN=1: rewrote " << JSTREAM_GOLDEN_CSV << " with "
                 << writer.rows_written() << " digests";
  }

  const CsvTable table = read_csv(JSTREAM_GOLDEN_CSV);
  ASSERT_EQ(table.header, kColumns)
      << "golden_runs.csv header drifted — regenerate via scripts/regen_golden.sh";

  std::map<std::string, std::vector<std::string>> golden_rows;
  for (const std::vector<std::string>& row : table.rows) {
    golden_rows[row[0] + "/" + row[1]] = row;
  }
  ASSERT_EQ(golden_rows.size(),
            cases.size() * schedulers.size() + pred_cases.size())
      << "golden_runs.csv row set does not cover the case x scheduler grid "
         "plus the predictive rows";

  for (const GoldenCase& golden : cases) {
    for (const std::string& scheduler : schedulers) {
      const std::string key = golden.name + "/" + scheduler;
      const auto it = golden_rows.find(key);
      ASSERT_NE(it, golden_rows.end()) << "no golden row for " << key;
      const std::vector<std::string> actual = digest_row(golden, scheduler);
      for (std::size_t col = 2; col < kColumns.size(); ++col) {
        expect_cell_matches(it->second[col], actual[col], kColumns[col], key);
      }
    }
  }
  for (const GoldenCase& golden : pred_cases) {
    const std::string key = golden.name + "/ema-predictive";
    const auto it = golden_rows.find(key);
    ASSERT_NE(it, golden_rows.end()) << "no golden row for " << key;
    const std::vector<std::string> actual =
        digest_row(golden, "ema-predictive", pred_options);
    for (std::size_t col = 2; col < kColumns.size(); ++col) {
      expect_cell_matches(it->second[col], actual[col], kColumns[col], key);
    }
  }
}

TEST(GoldenRuns, StaleCaseInteractsFaultsWithTheForecastWindow) {
  // The stale predictive case must actually draw stale-feedback windows —
  // that is the interaction its digest row pins (track_fault_staleness
  // freezes the forecast across exactly those windows).
  const GoldenCase stale = predictive_cases().back();
  ASSERT_EQ(stale.name, "stale");
  ASSERT_TRUE(stale.config.forecast.track_fault_staleness);
  const FaultSchedule schedule = make_fault_schedule(stale.config);
  EXPECT_GT(schedule.total_stale_slots(), 0);
}

TEST(GoldenRuns, FaultedCaseActuallyInjectsEveryFamily) {
  // Guards the suite's coverage: if a refactor quietly stopped the faulted
  // case from drawing windows, its digests would degenerate into a second
  // benign run and the regression net would have a hole.
  const GoldenCase faulted = golden_cases().back();
  ASSERT_EQ(faulted.name, "faulted");
  const FaultSchedule schedule = make_fault_schedule(faulted.config);
  EXPECT_GT(schedule.total_outage_slots(), 0);
  EXPECT_GT(schedule.total_stale_slots(), 0);
  EXPECT_GT(schedule.departures(), 0u);
  EXPECT_FALSE(schedule.capacity_windows().empty());
}

}  // namespace
}  // namespace jstream
