// Integration tests for the extension subsystems: the qualitative
// relationships each extension is built to demonstrate, verified end to end
// at reduced scale.
#include <gtest/gtest.h>

#include "abr/abr_simulator.hpp"
#include "baselines/factory.hpp"
#include "sim/catalog.hpp"
#include "sim/multicell.hpp"
#include "sim/oracle.hpp"
#include "sim/replication.hpp"
#include "sim/simulator.hpp"

namespace jstream {
namespace {

ScenarioConfig reduced(std::size_t users = 12, std::uint64_t seed = 42) {
  ScenarioConfig config = paper_scenario(users, seed);
  config.video_min_mb = 40.0;
  config.video_max_mb = 80.0;
  config.max_slots = 3000;
  return config;
}

TEST(ExtensionClaims, OracleUndercutsLowStallSchedulers) {
  // The oracle is the cheapest ZERO-STALL schedule: it must undercut every
  // policy that also keeps playback (nearly) smooth. Policies that stall
  // heavily (e.g. EMA at large V) can defer bytes past the oracle's deadlines
  // into cheaper slots, so they are excluded from this comparison.
  const ScenarioConfig scenario = reduced();
  const OracleResult oracle = offline_energy_bound(scenario);
  for (const char* name : {"default", "throttling", "onoff", "estreamer", "rtma"}) {
    const RunMetrics online = simulate(scenario, make_scheduler(name), false);
    EXPECT_LE(oracle.total_trans_mj, online.total_trans_mj() + 1e-6) << name;
  }
}

TEST(ExtensionClaims, EmaByteBillShrinksTowardAndPastTheOracleAsVGrows) {
  // Growing V buys cheaper bytes; once EMA starts stalling it may even pass
  // below the zero-stall oracle (spending playback delay the oracle is not
  // allowed to spend). The gap must shrink monotonically in V.
  const ScenarioConfig scenario = reduced();
  const OracleResult oracle = offline_energy_bound(scenario);
  SchedulerOptions small_v;
  small_v.ema.v_weight = 0.01;
  SchedulerOptions large_v;
  large_v.ema.v_weight = 2.0;
  const double gap_small =
      simulate(scenario, make_scheduler("ema-fast", small_v), false).total_trans_mj() -
      oracle.total_trans_mj;
  const double gap_large =
      simulate(scenario, make_scheduler("ema-fast", large_v), false).total_trans_mj() -
      oracle.total_trans_mj;
  EXPECT_LT(gap_large, gap_small);
}

TEST(ExtensionClaims, ChurnPreservesTheFrameworkAdvantages) {
  const ScenarioConfig scenario = make_catalog_scenario("churn", 20, 42);
  ScenarioConfig small = scenario;
  small.video_min_mb = 40.0;
  small.video_max_mb = 80.0;
  small.max_slots = 3000;
  small.arrival_spread_slots = 300;
  const DefaultReference reference = run_default_reference(small);
  const RunMetrics default_run = simulate(small, make_scheduler("default"), false);
  const RunMetrics rtma_run = simulate(
      small, make_scheduler("rtma", rtma_options_for_alpha(1.0, reference)), false);
  // Churn lightens the instantaneous load, so both may sit at the cold-start
  // floor; the claim is "no regression" on either axis.
  EXPECT_LE(rtma_run.avg_rebuffer_per_user_slot_s(),
            default_run.avg_rebuffer_per_user_slot_s() + 1e-9);
  EXPECT_LE(rtma_run.avg_energy_per_user_slot_mj(),
            default_run.avg_energy_per_user_slot_mj() * 1.05);
}

TEST(ExtensionClaims, MultiCellScalesTheDeploymentLinearly) {
  ScenarioConfig cell = reduced(6);
  const MultiCellResult one = simulate_multicell(MultiCellConfig::uniform(cell, 1),
                                                 "throttling");
  const MultiCellResult four = simulate_multicell(MultiCellConfig::uniform(cell, 4),
                                                  "throttling");
  EXPECT_EQ(four.total_users(), 4 * one.total_users());
  // Independent cells: total energy grows roughly with the cell count
  // (different seeds per cell, so not exactly).
  EXPECT_GT(four.total_energy_mj(), 2.0 * one.total_energy_mj());
}

TEST(ExtensionClaims, AdaptiveRtmaMatchesStaticWhenAnchored) {
  const ScenarioConfig scenario = reduced();
  const DefaultReference reference = run_default_reference(scenario);
  const RunMetrics fixed = simulate(
      scenario, make_scheduler("rtma", rtma_options_for_alpha(1.0, reference)), false);
  SchedulerOptions adaptive;
  adaptive.rtma_adaptive.target_energy_mj = reference.trans_per_tx_slot_mj;
  const RunMetrics tracked =
      simulate(scenario, make_scheduler("rtma-adaptive", adaptive), false);
  // On the stationary scenario the controller converges to the static
  // behaviour: totals agree within a few percent.
  EXPECT_NEAR(tracked.total_energy_mj(), fixed.total_energy_mj(),
              0.10 * fixed.total_energy_mj());
}

TEST(ExtensionClaims, AbrBufferBasedAvoidsStallsUnderScarcity) {
  AbrScenarioConfig scarce;
  scarce.base = reduced(10);
  scarce.base.capacity_kbps = 3600.0;  // ~360 KB/s per client
  scarce.duration_min_s = 60.0;
  scarce.duration_max_s = 120.0;
  scarce.selector = "buffer-based";
  const AbrRunMetrics adaptive = simulate_abr(scarce, make_scheduler("default"));
  AbrScenarioConfig greedy_quality = scarce;
  greedy_quality.selector = "fixed";
  greedy_quality.ladder_kbps = {600.0};  // top quality only
  const AbrRunMetrics fixed = simulate_abr(greedy_quality, make_scheduler("default"));
  // Adaptation sheds quality instead of stalling.
  EXPECT_LT(adaptive.mean_rebuffer_s(), fixed.mean_rebuffer_s());
  EXPECT_LT(adaptive.mean_quality_kbps(), 600.0);
}

TEST(ExtensionClaims, ReplicationConfirmsTheHeadlineAcrossSeeds) {
  ScenarioConfig scenario = reduced(15);
  const DefaultReference reference = run_default_reference(scenario);
  const ReplicationResult default_runs =
      replicate_experiment({"default", "default", scenario, {}}, 3);
  const ReplicationResult rtma_runs = replicate_experiment(
      {"rtma", "rtma", scenario, rtma_options_for_alpha(1.0, reference)}, 3);
  // RTMA's mean rebuffering is lower with separation beyond one CI width.
  EXPECT_LT(rtma_runs.pc_s.summary.mean + rtma_runs.pc_s.ci95_halfwidth(),
            default_runs.pc_s.summary.mean + default_runs.pc_s.ci95_halfwidth());
}

}  // namespace
}  // namespace jstream
