// Golden-run digests for the online service mode: every factory scheduler is
// run over two fixed Poisson-arrival scenarios (low and high load) and its
// session-flow and steady-state digest is compared against the checked-in
// tests/integration/service_golden_runs.csv. Any unintended change to the
// arrival stream, admission path, session recycling, or slot accounting
// fails here with the drifted column. Intentional changes regenerate via
// scripts/regen_golden.sh (GOLDEN_REGEN=1) — review the diff like code.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "baselines/factory.hpp"
#include "common/csv.hpp"
#include "session/service.hpp"

#ifndef JSTREAM_SERVICE_GOLDEN_CSV
#error "build must define JSTREAM_SERVICE_GOLDEN_CSV (path to service_golden_runs.csv)"
#endif

namespace jstream {
namespace {

struct GoldenCase {
  std::string name;
  ServiceConfig config;
};

std::vector<GoldenCase> golden_cases() {
  // Small enough to run all schedulers in seconds, busy enough that sessions
  // arrive, complete, and recycle population slots many times over.
  ScenarioConfig cell = paper_scenario(/*users=*/6, /*seed=*/20260808);
  cell.max_slots = 300;
  cell.video_min_mb = 2.0;
  cell.video_max_mb = 4.0;

  ServiceConfig low;
  low.cell = cell;
  low.arrivals.kind = ArrivalKind::kPoisson;
  low.arrivals.rate_per_slot = 0.08;
  low.warmup_slots = 60;

  ServiceConfig high = low;
  high.arrivals.rate_per_slot = 0.3;

  return {{"poisson_low", low}, {"poisson_high", high}};
}

const std::vector<std::string> kColumns = {
    "case",         "scheduler",       "slots_run",
    "offered",      "admitted",        "blocked",
    "completed",    "aborted",         "concurrency_sum",
    "rebuffer_sum_s", "energy_sum_mj", "session_rebuffer_sum_s",
    "session_delivered_sum_kb"};

std::string fmt(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

std::vector<std::string> digest_row(const GoldenCase& golden,
                                    const std::string& scheduler) {
  const ServiceResult result =
      simulate_service(golden.config, make_scheduler(scheduler));
  const ServiceMetrics& m = result.service;
  return {golden.name,
          scheduler,
          std::to_string(m.slots_run),
          std::to_string(m.offered),
          std::to_string(m.admitted),
          std::to_string(m.blocked),
          std::to_string(m.completed),
          std::to_string(m.aborted),
          fmt(m.concurrency_sum),
          fmt(m.rebuffer_sum_s),
          fmt(m.energy_sum_mj),
          fmt(m.session_rebuffer_sum_s),
          fmt(m.session_delivered_sum_kb)};
}

/// Digest doubles must reproduce to round-trip precision; the slack covers
/// only the decimal round trip through the CSV, not behavioural drift.
constexpr double kRelTol = 1e-12;

void expect_cell_matches(const std::string& expected, const std::string& actual,
                         const std::string& column, const std::string& key) {
  if (expected == actual) return;
  const double want = std::strtod(expected.c_str(), nullptr);
  const double got = std::strtod(actual.c_str(), nullptr);
  const double slack = kRelTol * std::max(1.0, std::abs(want));
  EXPECT_LE(std::abs(got - want), slack)
      << key << " drifted in column '" << column << "': golden " << expected
      << ", run " << actual
      << "\nIf the change is intentional, regenerate with scripts/regen_golden.sh "
         "and review the CSV diff.";
}

TEST(ServiceGoldenRuns, EveryFactorySchedulerMatchesTheCheckedInDigests) {
  const std::vector<GoldenCase> cases = golden_cases();
  const std::vector<std::string> schedulers = scheduler_names();

  if (std::getenv("GOLDEN_REGEN") != nullptr) {
    CsvWriter writer(JSTREAM_SERVICE_GOLDEN_CSV, kColumns);
    for (const GoldenCase& golden : cases) {
      for (const std::string& scheduler : schedulers) {
        writer.row(digest_row(golden, scheduler));
      }
    }
    GTEST_SKIP() << "GOLDEN_REGEN=1: rewrote " << JSTREAM_SERVICE_GOLDEN_CSV
                 << " with " << writer.rows_written() << " digests";
  }

  const CsvTable table = read_csv(JSTREAM_SERVICE_GOLDEN_CSV);
  ASSERT_EQ(table.header, kColumns)
      << "service_golden_runs.csv header drifted — regenerate via "
         "scripts/regen_golden.sh";

  std::map<std::string, std::vector<std::string>> golden_rows;
  for (const std::vector<std::string>& row : table.rows) {
    golden_rows[row[0] + "/" + row[1]] = row;
  }
  ASSERT_EQ(golden_rows.size(), cases.size() * schedulers.size())
      << "service_golden_runs.csv row set does not cover the case x scheduler grid";

  for (const GoldenCase& golden : cases) {
    for (const std::string& scheduler : schedulers) {
      const std::string key = golden.name + "/" + scheduler;
      const auto it = golden_rows.find(key);
      ASSERT_NE(it, golden_rows.end()) << "no golden row for " << key;
      const std::vector<std::string> actual = digest_row(golden, scheduler);
      for (std::size_t col = 2; col < kColumns.size(); ++col) {
        expect_cell_matches(it->second[col], actual[col], kColumns[col], key);
      }
    }
  }
}

TEST(ServiceGoldenRuns, CasesActuallyChurnSessions) {
  // Guards the suite's coverage: the digests only pin the session machinery
  // if sessions genuinely arrive, complete, and recycle slots.
  for (const GoldenCase& golden : golden_cases()) {
    const ServiceResult result =
        simulate_service(golden.config, make_scheduler("default"));
    EXPECT_GT(result.service.offered, 0) << golden.name;
    EXPECT_GT(result.service.completed, 0) << golden.name;
  }
  const ServiceResult high =
      simulate_service(golden_cases().back().config, make_scheduler("default"));
  // High load turns over the 6 population slots several times.
  EXPECT_GT(high.service.admitted, 12);
}

}  // namespace
}  // namespace jstream
