// Telemetry stress tests under concurrency: SlotTracer writers racing a
// snapshotting reader, metric writers racing the process-wide enable flag,
// and scoped timers observed from pool workers. All must be TSan-clean —
// telemetry records from thread_pool workers during replication runs, so a
// race here corrupts production artifacts silently.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "telemetry/metric.hpp"
#include "telemetry/registry.hpp"
#include "telemetry/slot_tracer.hpp"
#include "common/units.hpp"

namespace jstream::telemetry {
namespace {

TEST(TelemetryStress, ConcurrentTracerWritersCountEveryEvent) {
  SlotTracer tracer(128);  // small ring: forces constant overwrites
  constexpr int kWriters = 4;
  constexpr int kEventsPerWriter = 5000;
  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&tracer, w] {
      for (int i = 0; i < kEventsPerWriter; ++i) {
        tracer.record(i, w, TraceEventKind::kGrant, as_double(i));
      }
    });
  }
  for (std::thread& t : writers) t.join();
  EXPECT_EQ(tracer.total_recorded(), kWriters * kEventsPerWriter);
  EXPECT_EQ(tracer.size(), tracer.capacity());
}

TEST(TelemetryStress, TracerSnapshotRacesWithWriters) {
  SlotTracer tracer(64);
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_acquire)) {
      const auto events = tracer.snapshot();
      EXPECT_LE(events.size(), tracer.capacity());
      // Every snapshotted event must be internally consistent (written under
      // the same lock), never a half-updated slot.
      for (const SlotTraceEvent& e : events) {
        EXPECT_EQ(e.kind, TraceEventKind::kQueueLevel);
        EXPECT_DOUBLE_EQ(e.value, as_double(e.slot));
      }
    }
  });
  std::vector<std::thread> writers;
  for (int w = 0; w < 2; ++w) {
    writers.emplace_back([&tracer] {
      for (int i = 0; i < 8000; ++i) {
        tracer.record(i, 0, TraceEventKind::kQueueLevel, as_double(i));
      }
    });
  }
  for (std::thread& t : writers) t.join();
  stop.store(true, std::memory_order_release);
  reader.join();
  EXPECT_EQ(tracer.total_recorded(), 2 * 8000);
}

TEST(TelemetryStress, EnableFlagRacesWithRecorders) {
  // set_enabled flips the process-wide gate while writers record into a local
  // registry. Recording while disabled drops events (by design); the
  // requirement here is only that the gate itself is a clean atomic and no
  // recorded value is torn.
  Registry registry;
  Counter& hits = registry.counter("flip.hits");
  SlotTracer& tracer = registry.tracer();
  std::atomic<bool> stop{false};
  std::thread flipper([&] {
    bool on = false;
    while (!stop.load(std::memory_order_acquire)) {
      set_enabled(on);
      on = !on;
    }
    set_enabled(true);
  });
  std::vector<std::thread> writers;
  for (int w = 0; w < 2; ++w) {
    writers.emplace_back([&hits, &tracer] {
      for (int i = 0; i < 5000; ++i) {
        hits.add(1);
        tracer.record(i, 0, TraceEventKind::kAdmit, -70.0);
      }
    });
  }
  for (std::thread& t : writers) t.join();
  stop.store(true, std::memory_order_release);
  flipper.join();
  set_enabled(true);  // leave the process-wide gate as other tests expect it
  // Both Counter::add and tracer.record honor the gate, so attempts made in
  // a disabled window are dropped by design — counts are bounded, not exact.
  EXPECT_LE(hits.value(), 2 * 5000);
  EXPECT_LE(tracer.total_recorded(), 2 * 5000);
  EXPECT_GE(hits.value(), 0);
}

TEST(TelemetryStress, HistogramConcurrentObserversPreserveSum) {
  Histogram histogram({1.0, 10.0, 100.0});
  constexpr int kThreads = 4;
  constexpr int kObs = 4000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&histogram] {
      for (int i = 0; i < kObs; ++i) histogram.observe(2.5);
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(histogram.count(), kThreads * kObs);
  // The double sum uses a CAS loop; identical addends make the expected
  // total exact regardless of interleaving order.
  EXPECT_DOUBLE_EQ(histogram.sum(), 2.5 * kThreads * kObs);
}

}  // namespace
}  // namespace jstream::telemetry
