// ThreadPool stress tests, designed to run under ThreadSanitizer: concurrent
// submitters, parallel_for over shared (index-disjoint) workspaces, and
// destruction while tasks are still queued. These complement the functional
// coverage in tests/common/test_thread_pool.cpp; here the point is the
// interleavings, not the results.

#include "common/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <numeric>
#include <vector>
#include "common/units.hpp"

namespace jstream {
namespace {

TEST(ThreadPoolStress, ConcurrentSubmittersAllRun) {
  ThreadPool pool(4);
  std::atomic<int> executed{0};
  constexpr int kSubmitters = 4;
  constexpr int kTasksPerSubmitter = 200;
  std::vector<std::thread> submitters;
  std::vector<std::future<void>> futures(
      checked_size(kSubmitters * kTasksPerSubmitter));
  submitters.reserve(kSubmitters);
  for (int s = 0; s < kSubmitters; ++s) {
    submitters.emplace_back([&pool, &executed, &futures, s] {
      for (int i = 0; i < kTasksPerSubmitter; ++i) {
        futures[checked_size(s * kTasksPerSubmitter + i)] =
            pool.submit([&executed] { executed.fetch_add(1, std::memory_order_relaxed); });
      }
    });
  }
  for (std::thread& t : submitters) t.join();
  for (std::future<void>& f : futures) f.get();
  EXPECT_EQ(executed.load(), kSubmitters * kTasksPerSubmitter);
}

TEST(ThreadPoolStress, ParallelForSharedWorkspaceIsRaceFree) {
  ThreadPool pool(4);
  constexpr std::size_t kItems = 10000;
  // Shared output vector, disjoint indices: the documented contract (no
  // cross-index synchronization) means this must be race-free under TSan.
  std::vector<double> out(kItems, 0.0);
  parallel_for(pool, kItems, [&out](std::size_t i) {
    out[i] = as_double(i) * 2.0;
  });
  double sum = std::accumulate(out.begin(), out.end(), 0.0);
  EXPECT_DOUBLE_EQ(sum, as_double(kItems) * (kItems - 1));
}

TEST(ThreadPoolStress, RepeatedParallelForReusesWorkers) {
  ThreadPool pool(3);
  std::vector<int> hits(512, 0);
  for (int round = 0; round < 20; ++round) {
    parallel_for(pool, hits.size(), [&hits](std::size_t i) { ++hits[i]; });
  }
  for (int h : hits) EXPECT_EQ(h, 20);
}

TEST(ThreadPoolStress, ParallelMapKeepsIndexOrderUnderContention) {
  ThreadPool pool(4);
  constexpr std::size_t kItems = 2048;
  const std::vector<std::size_t> mapped =
      parallel_map(pool, kItems, [](std::size_t i) { return i * i; });
  ASSERT_EQ(mapped.size(), kItems);
  for (std::size_t i = 0; i < kItems; ++i) EXPECT_EQ(mapped[i], i * i);
}

TEST(ThreadPoolStress, DestructionDrainsQueuedTasks) {
  std::atomic<int> executed{0};
  constexpr int kTasks = 500;
  {
    ThreadPool pool(2);
    for (int i = 0; i < kTasks; ++i) {
      // Intentionally discard the futures: destruction must still run every
      // queued task before joining (the pool drains, it does not cancel).
      auto f = pool.submit(
          [&executed] { executed.fetch_add(1, std::memory_order_relaxed); });
      (void)f;
    }
  }
  EXPECT_EQ(executed.load(), kTasks);
}

}  // namespace
}  // namespace jstream
