// EMA warm-start state under campaign concurrency: every campaign cell owns
// its own EmaScheduler, whose EmaDpWorkspace carries cross-slot memo and
// checkpoint state. Shards racing on the pool must therefore be (a)
// TSan-clean — no warm-start buffer is shared across cells — and (b)
// bit-identical to a serial run of the same grid: the reuse layers are pure
// per-instance accelerations, so thread count cannot perturb a single
// allocation, certified gap, or metric.

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "sim/campaign.hpp"
#include "sim/scenario.hpp"

namespace jstream {
namespace {

std::vector<ExperimentSpec> small_grid() {
  ScenarioConfig base = paper_scenario(/*users=*/4, /*seed=*/11);
  base.max_slots = 80;
  // Scarce pipe: capacity binds, so the exact cells run the warm-start DP
  // (not just the separable shortcut) and the k8 cells certify real gaps.
  base.capacity_kbps = 500.0;
  SchedulerOptions exact;
  exact.ema.v_weight = 0.05;
  SchedulerOptions coarse = exact;
  coarse.ema.coarsen_units = 8;
  const std::vector<CampaignSeries> series{{"ema", "ema", exact},
                                           {"ema-k8", "ema", coarse}};
  return make_campaign_grid(base, series, /*replications=*/4);
}

void expect_identical(const std::vector<RunMetrics>& a,
                      const std::vector<RunMetrics>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].slots_run, b[i].slots_run);
    EXPECT_EQ(a[i].total_energy_mj(), b[i].total_energy_mj());
    EXPECT_EQ(a[i].total_rebuffer_s(), b[i].total_rebuffer_s());
    // The solve certificate is part of the determinism contract too: racing
    // shards must report the same exact/certified split and the same gaps.
    EXPECT_EQ(a[i].has_certificate, b[i].has_certificate);
    EXPECT_EQ(a[i].cert_exact_slots, b[i].cert_exact_slots);
    EXPECT_EQ(a[i].cert_certified_slots, b[i].cert_certified_slots);
    EXPECT_EQ(a[i].cert_gap_sum, b[i].cert_gap_sum);
    EXPECT_EQ(a[i].cert_gap_max, b[i].cert_gap_max);
  }
}

TEST(EmaWarmStartConcurrent, ParallelShardsMatchSerialBitForBit) {
  const std::vector<ExperimentSpec> specs = small_grid();
  CampaignOptions serial;
  serial.threads = 1;
  CampaignOptions parallel;
  parallel.threads = 4;
  const std::vector<RunMetrics> base = run_campaign(specs, serial);
  const std::vector<RunMetrics> racy = run_campaign(specs, parallel);
  expect_identical(base, racy);
  // The grid really exercised both solver modes.
  bool saw_certified = false;
  for (const RunMetrics& m : base) {
    ASSERT_TRUE(m.has_certificate);
    saw_certified = saw_certified || m.cert_certified_slots > 0;
  }
  EXPECT_TRUE(saw_certified);
}

TEST(EmaWarmStartConcurrent, SimultaneousCampaignsDontInterfere) {
  // Two campaigns race in separate pools; each shard's warm-start workspaces
  // live inside its own scheduler instances, so neither perturbs the other.
  const std::vector<ExperimentSpec> specs = small_grid();
  CampaignOptions serial;
  serial.threads = 1;
  const std::vector<RunMetrics> base = run_campaign(specs, serial);

  std::vector<RunMetrics> racy_a;
  std::vector<RunMetrics> racy_b;
  CampaignOptions two;
  two.threads = 2;
  std::thread runner_a([&] { racy_a = run_campaign(specs, two); });
  std::thread runner_b([&] { racy_b = run_campaign(specs, two); });
  runner_a.join();
  runner_b.join();

  expect_identical(base, racy_a);
  expect_identical(base, racy_b);
}

}  // namespace
}  // namespace jstream
