// Predictive campaigns under concurrency (runs in the TSan configuration via
// the `concurrency` label): predictive series derive their forecasts inside
// worker threads/processes while the trace cache serves shared channel
// substrates — sharded predictive grids must match the serial baseline bit
// for bit, and predictive cells carrying an active forecast error spec must
// never alias a prediction-free cache entry (the forecast fingerprint is part
// of the TraceKey), while perfect-forecast cells deliberately DO share the
// prediction-free entry (their fingerprint is 0: same substrate, same key).

#include <gtest/gtest.h>

#include <vector>

#include "sim/campaign.hpp"
#include "sim/distrib.hpp"
#include "sim/forecast.hpp"
#include "sim/scenario.hpp"

namespace jstream {
namespace {

SchedulerOptions predictive_options(std::int64_t horizon = 40) {
  SchedulerOptions options;
  options.ema_predictive.horizon_slots = horizon;
  return options;
}

ScenarioConfig base_scenario(std::uint64_t seed) {
  ScenarioConfig config = paper_scenario(/*users=*/4, seed);
  config.max_slots = 150;
  return config;
}

/// Mixed grid: plain EMA and perfect-forecast predictive cells on the clean
/// scenario, noisy-forecast predictive cells on the same seeds.
std::vector<ExperimentSpec> mixed_specs(std::uint64_t seed,
                                        std::size_t replications) {
  const std::vector<CampaignSeries> clean_series = {
      {"ema", "ema", {}},
      {"pred-perfect", "ema-predictive", predictive_options()},
  };
  ScenarioConfig noisy = base_scenario(seed);
  noisy.forecast.sigma_dbm = 5.0;
  const std::vector<CampaignSeries> noisy_series = {
      {"pred-noisy", "ema-predictive", predictive_options()},
  };
  std::vector<ExperimentSpec> specs =
      make_campaign_grid(base_scenario(seed), clean_series, replications);
  const std::vector<ExperimentSpec> noisy_specs =
      make_campaign_grid(noisy, noisy_series, replications);
  specs.insert(specs.end(), noisy_specs.begin(), noisy_specs.end());
  return specs;
}

TEST(PredictiveCampaignConcurrent, ShardedMixedGridMatchesSerialWithoutAliasing) {
  const std::vector<ExperimentSpec> specs = mixed_specs(91, /*replications=*/2);

  TraceCache serial_cache;
  CampaignOptions serial;
  serial.threads = 1;
  serial.cache = &serial_cache;
  const std::vector<RunMetrics> baseline = run_campaign(specs, serial);

  TraceCache shared_cache;
  CampaignOptions parallel;
  parallel.threads = 4;
  parallel.cache = &shared_cache;
  const std::vector<RunMetrics> sharded = run_campaign(specs, parallel);

  ASSERT_EQ(sharded.size(), baseline.size());
  for (std::size_t i = 0; i < sharded.size(); ++i) {
    EXPECT_EQ(metrics_digest(sharded[i]), metrics_digest(baseline[i]))
        << specs[i].label;
  }
  // 2 replication seeds x {prediction-free key space, noisy-forecast key
  // space}: four generations. The perfect-forecast predictive cells MUST hit
  // the prediction-free entries (fingerprint 0), the noisy ones must not.
  EXPECT_EQ(shared_cache.misses(), 4u);

  // The noisy forecast genuinely changes the schedule (same seeds, same
  // channel substrate, different prices fed to the deferral term).
  const std::size_t clean_cells = 2 * 2;  // series x replications
  bool any_differs = false;
  for (std::size_t rep = 0; rep < 2; ++rep) {
    const RunMetrics& perfect = sharded[rep * 2 + 1];  // pred-perfect, rep-major
    const RunMetrics& noisy = sharded[clean_cells + rep];
    if (metrics_digest(perfect) != metrics_digest(noisy)) any_differs = true;
  }
  EXPECT_TRUE(any_differs);
}

TEST(PredictiveCampaignConcurrent, FourShardDistributedMatchesSerial) {
  // Multi-process sharding: each worker rebuilds forecasts and price tables
  // in its own address space; the merged frame must still be bit-identical
  // to the serial engine.
  const std::vector<ExperimentSpec> specs = mixed_specs(17, /*replications=*/2);

  TraceCache serial_cache;
  CampaignOptions serial;
  serial.threads = 1;
  serial.cache = &serial_cache;
  const std::vector<RunMetrics> baseline = run_campaign(specs, serial);

  DistribOptions distrib;
  distrib.processes = 4;
  distrib.campaign.threads = 1;
  const std::vector<RunMetrics> merged = run_campaign_distributed(specs, distrib);

  ASSERT_EQ(merged.size(), baseline.size());
  EXPECT_EQ(metrics_digest(std::span<const RunMetrics>(merged)),
            metrics_digest(std::span<const RunMetrics>(baseline)));
}

}  // namespace
}  // namespace jstream
