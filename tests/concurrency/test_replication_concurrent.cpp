// Replication under concurrency: parallel replicate_experiment runs must be
// (a) TSan-clean — Simulators on pool workers all record into the global
// telemetry registry — and (b) deterministic: a run parallelized over N
// workers produces bit-identical metrics to the same run on one worker, and
// two replications racing each other in separate pools don't perturb each
// other's results.

#include "sim/replication.hpp"

#include <gtest/gtest.h>

#include <thread>

#include "sim/scenario.hpp"

namespace jstream {
namespace {

ExperimentSpec small_spec(const char* scheduler) {
  ExperimentSpec spec;
  spec.label = scheduler;
  spec.scheduler = scheduler;
  spec.scenario = paper_scenario(4, /*seed=*/7);
  spec.scenario.max_slots = 60;
  return spec;
}

void expect_same_runs(const ReplicationResult& a, const ReplicationResult& b) {
  ASSERT_EQ(a.runs.size(), b.runs.size());
  for (std::size_t r = 0; r < a.runs.size(); ++r) {
    EXPECT_EQ(a.runs[r].slots_run, b.runs[r].slots_run);
    EXPECT_DOUBLE_EQ(a.runs[r].total_energy_mj(), b.runs[r].total_energy_mj());
    EXPECT_DOUBLE_EQ(a.runs[r].total_rebuffer_s(), b.runs[r].total_rebuffer_s());
  }
  EXPECT_DOUBLE_EQ(a.pe_mj.summary.mean, b.pe_mj.summary.mean);
  EXPECT_DOUBLE_EQ(a.pc_s.summary.mean, b.pc_s.summary.mean);
}

TEST(ReplicationConcurrent, ParallelMatchesSerial) {
  const ExperimentSpec spec = small_spec("default");
  const ReplicationResult serial = replicate_experiment(spec, 4, /*threads=*/1);
  const ReplicationResult parallel = replicate_experiment(spec, 4, /*threads=*/4);
  expect_same_runs(serial, parallel);
}

TEST(ReplicationConcurrent, SimultaneousReplicationsDontInterfere) {
  // Two replications race in separate pools, each itself multi-threaded.
  // Results must equal an undisturbed serial baseline of the same spec.
  const ExperimentSpec spec_a = small_spec("default");
  const ExperimentSpec spec_b = small_spec("ema");
  const ReplicationResult base_a = replicate_experiment(spec_a, 3, 1);
  const ReplicationResult base_b = replicate_experiment(spec_b, 3, 1);

  ReplicationResult racy_a;
  ReplicationResult racy_b;
  std::thread runner_a(
      [&] { racy_a = replicate_experiment(spec_a, 3, /*threads=*/2); });
  std::thread runner_b(
      [&] { racy_b = replicate_experiment(spec_b, 3, /*threads=*/2); });
  runner_a.join();
  runner_b.join();

  expect_same_runs(base_a, racy_a);
  expect_same_runs(base_b, racy_b);
}

}  // namespace
}  // namespace jstream
