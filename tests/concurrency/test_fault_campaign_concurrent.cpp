// Faulted campaigns under concurrency (runs in the TSan configuration via
// the `concurrency` label): fault schedules are generated per cell inside
// worker threads while the trace cache serves shared channel substrates —
// sharded faulted grids must match an undisturbed serial baseline bit for
// bit, and faulted cells must never alias an unfaulted cache entry even when
// both key spaces race through one cache.

#include <gtest/gtest.h>

#include <vector>

#include "sim/campaign.hpp"
#include "sim/fault.hpp"
#include "sim/scenario.hpp"

namespace jstream {
namespace {

ScenarioConfig faulted_scenario(std::uint64_t seed) {
  ScenarioConfig config = paper_scenario(/*users=*/4, seed);
  config.max_slots = 150;
  config.faults.outage_rate_per_kslot = 10.0;
  config.faults.staleness_rate_per_kslot = 15.0;
  config.faults.departure_fraction = 0.4;
  config.faults.capacity_rate_per_kslot = 6.0;
  config.faults.capacity_min_slots = 5;
  config.faults.capacity_max_slots = 20;
  return config;
}

const std::vector<CampaignSeries> kSeries = {
    {"default", "default", {}},
    {"rtma", "rtma", {}},
    {"ema-fast", "ema-fast", {}},
};

TEST(FaultCampaignConcurrent, ShardedFaultedGridMatchesSerialBaseline) {
  const std::vector<ExperimentSpec> specs =
      make_campaign_grid(faulted_scenario(31), kSeries, /*replications=*/3);

  TraceCache serial_cache;
  CampaignOptions serial;
  serial.threads = 1;
  serial.cache = &serial_cache;
  const std::vector<RunMetrics> baseline = run_campaign(specs, serial);

  TraceCache shared_cache;
  CampaignOptions parallel;
  parallel.threads = 4;
  parallel.cache = &shared_cache;
  const std::vector<RunMetrics> sharded = run_campaign(specs, parallel);

  ASSERT_EQ(sharded.size(), baseline.size());
  for (std::size_t i = 0; i < sharded.size(); ++i) {
    EXPECT_EQ(sharded[i].slots_run, baseline[i].slots_run) << specs[i].label;
    EXPECT_EQ(sharded[i].total_energy_mj(), baseline[i].total_energy_mj())
        << specs[i].label;
    EXPECT_EQ(sharded[i].total_rebuffer_s(), baseline[i].total_rebuffer_s())
        << specs[i].label;
    EXPECT_EQ(sharded[i].completion_rate(), baseline[i].completion_rate())
        << specs[i].label;
  }
  // One trace generation per replication seed, shards notwithstanding.
  EXPECT_EQ(shared_cache.misses(), 3u);
}

TEST(FaultCampaignConcurrent, FaultedAndBenignGridsShareACacheWithoutAliasing) {
  // The same seeds race through one cache from both key spaces; the fault
  // fingerprint keeps the entry sets disjoint while each run stays equal to
  // its own serial baseline.
  ScenarioConfig benign = faulted_scenario(57);
  benign.faults = FaultConfig{};
  std::vector<ExperimentSpec> specs =
      make_campaign_grid(faulted_scenario(57), kSeries, /*replications=*/2);
  const std::vector<ExperimentSpec> benign_specs =
      make_campaign_grid(benign, kSeries, /*replications=*/2);
  specs.insert(specs.end(), benign_specs.begin(), benign_specs.end());

  TraceCache serial_cache;
  CampaignOptions serial;
  serial.threads = 1;
  serial.cache = &serial_cache;
  const std::vector<RunMetrics> baseline = run_campaign(specs, serial);

  TraceCache shared_cache;
  CampaignOptions parallel;
  parallel.threads = 4;
  parallel.cache = &shared_cache;
  const std::vector<RunMetrics> sharded = run_campaign(specs, parallel);

  ASSERT_EQ(sharded.size(), baseline.size());
  for (std::size_t i = 0; i < sharded.size(); ++i) {
    EXPECT_EQ(sharded[i].slots_run, baseline[i].slots_run) << specs[i].label;
    EXPECT_EQ(sharded[i].total_energy_mj(), baseline[i].total_energy_mj())
        << specs[i].label;
    EXPECT_EQ(sharded[i].total_rebuffer_s(), baseline[i].total_rebuffer_s())
        << specs[i].label;
  }
  // 2 seeds x {faulted, benign} key spaces: four distinct generations.
  EXPECT_EQ(shared_cache.misses(), 4u);

  // The faulted grid genuinely diverges from the benign one (same seeds).
  const std::size_t half = specs.size() / 2;
  bool any_differs = false;
  for (std::size_t i = 0; i < half; ++i) {
    if (sharded[i].total_energy_mj() != sharded[half + i].total_energy_mj()) {
      any_differs = true;
    }
  }
  EXPECT_TRUE(any_differs);
}

}  // namespace
}  // namespace jstream
