// Service-mode campaigns under concurrency (runs in the TSan configuration
// via the `concurrency` label): sharded service grids must match an
// undisturbed serial baseline bit for bit, and service cells must share or
// isolate trace-cache entries exactly as their arrival fingerprints dictate —
// zero-arrival service cells alias batch entries (they are the same run),
// active-arrival cells never do.

#include <gtest/gtest.h>

#include <span>
#include <vector>

#include "session/service_campaign.hpp"
#include "sim/campaign.hpp"

namespace jstream {
namespace {

ScenarioConfig service_cell(std::uint64_t seed) {
  ScenarioConfig cell = paper_scenario(/*users=*/4, seed);
  cell.max_slots = 150;
  cell.video_min_mb = 2.0;
  cell.video_max_mb = 4.0;
  return cell;
}

std::vector<ServiceExperimentSpec> service_specs(std::uint64_t seed, double rate) {
  const char* schedulers[] = {"default", "ema-fast", "rtma"};
  std::vector<ServiceExperimentSpec> specs;
  for (const char* name : schedulers) {
    ServiceExperimentSpec spec;
    spec.label = name;
    spec.scheduler = name;
    spec.config.cell = service_cell(seed);
    if (rate > 0.0) {
      spec.config.arrivals.kind = ArrivalKind::kPoisson;
      spec.config.arrivals.rate_per_slot = rate;
      spec.config.warmup_slots = 30;
    }
    specs.push_back(std::move(spec));
  }
  return specs;
}

void expect_identical(const std::vector<ServiceResult>& a,
                      const std::vector<ServiceResult>& b,
                      std::span<const ServiceExperimentSpec> specs) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].service.offered, b[i].service.offered) << specs[i].label;
    EXPECT_EQ(a[i].service.admitted, b[i].service.admitted) << specs[i].label;
    EXPECT_EQ(a[i].service.completed, b[i].service.completed) << specs[i].label;
    EXPECT_EQ(a[i].service.aborted, b[i].service.aborted) << specs[i].label;
    EXPECT_EQ(a[i].service.rebuffer_sum_s, b[i].service.rebuffer_sum_s)
        << specs[i].label;
    EXPECT_EQ(a[i].service.energy_sum_mj, b[i].service.energy_sum_mj)
        << specs[i].label;
    EXPECT_EQ(a[i].run.total_energy_mj(), b[i].run.total_energy_mj())
        << specs[i].label;
    EXPECT_EQ(a[i].run.total_rebuffer_s(), b[i].run.total_rebuffer_s())
        << specs[i].label;
  }
}

TEST(ServiceCampaignConcurrent, ShardedServiceGridMatchesSerialBaseline) {
  std::vector<ServiceExperimentSpec> specs = service_specs(91, 0.3);
  const std::vector<ServiceExperimentSpec> more = service_specs(92, 0.3);
  specs.insert(specs.end(), more.begin(), more.end());

  TraceCache serial_cache;
  CampaignOptions serial;
  serial.threads = 1;
  serial.cache = &serial_cache;
  const std::vector<ServiceResult> baseline = run_service_campaign(specs, serial);

  TraceCache shared_cache;
  CampaignOptions parallel;
  parallel.threads = 4;
  parallel.cache = &shared_cache;
  const std::vector<ServiceResult> sharded = run_service_campaign(specs, parallel);

  expect_identical(sharded, baseline, specs);
  // One substrate per (seed, arrival fingerprint): three schedulers share it.
  EXPECT_EQ(shared_cache.misses(), 2u);
}

TEST(ServiceCampaignConcurrent, ServiceAndBatchEntriesShareOrIsolateByFingerprint) {
  // One cache serves three key classes over the same scenario: batch cells,
  // zero-arrival service cells (same key as batch — the runs are identical),
  // and Poisson service cells (own entry via the arrival fingerprint).
  const ScenarioConfig cell = service_cell(57);

  std::vector<ServiceExperimentSpec> specs = service_specs(57, 0.0);  // zero-arrival
  const std::vector<ServiceExperimentSpec> poisson = service_specs(57, 0.3);
  specs.insert(specs.end(), poisson.begin(), poisson.end());
  std::vector<ExperimentSpec> batch_specs;
  for (const char* name : {"default", "ema-fast", "rtma"}) {
    batch_specs.push_back(ExperimentSpec{name, name, cell, {}});
  }

  TraceCache cache;
  CampaignOptions options;
  options.threads = 4;
  options.cache = &cache;
  const std::vector<ServiceResult> service = run_service_campaign(specs, options);
  const std::vector<RunMetrics> batch = run_campaign(batch_specs, options);

  // Two generations total: (scenario, 0) shared by six runs across both
  // engines, (scenario, poisson fp) for the three arrival cells.
  EXPECT_EQ(cache.misses(), 2u);

  // Sharing is sound because zero-arrival service IS the batch run.
  for (std::size_t i = 0; i < batch.size(); ++i) {
    EXPECT_EQ(service[i].run.total_energy_mj(), batch[i].total_energy_mj())
        << batch_specs[i].label;
    EXPECT_EQ(service[i].run.total_rebuffer_s(), batch[i].total_rebuffer_s())
        << batch_specs[i].label;
    EXPECT_EQ(service[i].run.slots_run, batch[i].slots_run) << batch_specs[i].label;
  }
  // And the Poisson cells genuinely ran a different workload.
  bool any_differs = false;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    if (service[batch.size() + i].run.total_energy_mj() !=
        batch[i].total_energy_mj()) {
      any_differs = true;
    }
  }
  EXPECT_TRUE(any_differs);
}

}  // namespace
}  // namespace jstream
