// Trace cache under concurrency (runs in the TSan configuration via the
// `concurrency` label): parallel campaign shards hammer one shared cache
// with overlapping keys — racing first-misses must collapse into a single
// generation per key, every thread must observe the same immutable set, and
// results must match an undisturbed serial baseline bit for bit.

#include "sim/trace_cache.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "sim/campaign.hpp"
#include "sim/scenario.hpp"
#include "common/units.hpp"

namespace jstream {
namespace {

ScenarioConfig small_scenario(std::uint64_t seed) {
  ScenarioConfig config = paper_scenario(/*users=*/4, seed);
  config.max_slots = 80;
  return config;
}

TEST(TraceCacheConcurrent, RacingLookupsShareOneGenerationPerKey) {
  TraceCache cache;
  constexpr int kThreads = 8;
  constexpr int kSeeds = 3;
  std::vector<std::shared_ptr<const SignalTraceSet>> seen(kThreads * kSeeds);
  std::atomic<int> start{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      start.fetch_add(1);
      while (start.load() < kThreads) {}  // line the threads up on the cache
      for (int s = 0; s < kSeeds; ++s) {
        seen[checked_size(t * kSeeds + s)] =
            cache.get_or_generate(small_scenario(static_cast<std::uint64_t>(s)));
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  // All threads resolved each seed to the same immutable set.
  for (int s = 0; s < kSeeds; ++s) {
    const SignalTraceSet* expected = seen[checked_size(s)].get();
    for (int t = 1; t < kThreads; ++t) {
      EXPECT_EQ(seen[checked_size(t * kSeeds + s)].get(), expected);
    }
  }
  EXPECT_EQ(cache.size(), checked_size(kSeeds));
  EXPECT_EQ(cache.misses(), static_cast<std::uint64_t>(kSeeds));
  EXPECT_EQ(cache.hits() + cache.misses(),
            static_cast<std::uint64_t>(kThreads * kSeeds));
}

TEST(TraceCacheConcurrent, ConcurrentInsertAndEvictionStaysConsistent) {
  // A budget of one entry forces every distinct-seed insert to evict the
  // previous resident while other threads are mid-lookup.
  const ScenarioConfig probe = small_scenario(0);
  TraceCache cache(SignalTraceSet::estimate_bytes(probe.users, probe.max_slots));
  constexpr int kThreads = 6;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int round = 0; round < 8; ++round) {
        const auto seed = static_cast<std::uint64_t>((t + round) % 4);
        const auto set = cache.get_or_generate(small_scenario(seed));
        ASSERT_NE(set, nullptr);
        EXPECT_TRUE(set->link_derived());
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_GE(cache.size(), 1u);
  EXPECT_LE(cache.resident_bytes(),
            2 * SignalTraceSet::estimate_bytes(probe.users, probe.max_slots));
}

TEST(TraceCacheConcurrent, ParallelCampaignShardsMatchSerialBaseline) {
  const std::vector<CampaignSeries> series = {
      {"default", "default", {}},
      {"rtma", "rtma", {}},
      {"ema-fast", "ema-fast", {}},
  };
  const std::vector<ExperimentSpec> specs =
      make_campaign_grid(small_scenario(21), series, /*replications=*/3);

  TraceCache serial_cache;
  CampaignOptions serial;
  serial.threads = 1;
  serial.cache = &serial_cache;
  const std::vector<RunMetrics> baseline = run_campaign(specs, serial);

  TraceCache shared_cache;
  CampaignOptions parallel;
  parallel.threads = 4;
  parallel.cache = &shared_cache;
  const std::vector<RunMetrics> sharded = run_campaign(specs, parallel);

  ASSERT_EQ(sharded.size(), baseline.size());
  for (std::size_t i = 0; i < sharded.size(); ++i) {
    EXPECT_EQ(sharded[i].slots_run, baseline[i].slots_run) << specs[i].label;
    EXPECT_EQ(sharded[i].total_energy_mj(), baseline[i].total_energy_mj())
        << specs[i].label;
    EXPECT_EQ(sharded[i].total_rebuffer_s(), baseline[i].total_rebuffer_s())
        << specs[i].label;
  }
  // Sharded or not, one generation per seed.
  EXPECT_EQ(shared_cache.misses(), 3u);
}

}  // namespace
}  // namespace jstream
