// Persistent trace tier under concurrency (runs in the TSan configuration
// via the `concurrency` label): threads race spills, promotions, and
// evictions against one shared TraceStore — directly on the store, and
// through a tiny-budget TraceCache whose every insert evicts-and-spills
// while other threads promote the same keys back. The store's counters and
// the served matrices must stay consistent; TSan must see no races on the
// spill-outside-the-lock path.

#include "sim/trace_store.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "common/units.hpp"
#include "sim/scenario.hpp"
#include "sim/trace_cache.hpp"

namespace jstream {
namespace {

ScenarioConfig small_scenario(std::uint64_t seed) {
  ScenarioConfig config = paper_scenario(/*users=*/4, seed);
  config.max_slots = 80;
  return config;
}

std::string fresh_dir(const std::string& name) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / ("jstream_storec_" + name)).string();
  std::filesystem::remove_all(dir);
  return dir;
}

TEST(TraceStoreConcurrent, RacingPutsAndLoadsConverge) {
  const std::string dir = fresh_dir("puts");
  TraceStore store(dir);
  constexpr int kThreads = 8;
  constexpr int kSeeds = 3;

  std::vector<std::uint64_t> fingerprints;
  std::vector<std::shared_ptr<const SignalTraceSet>> sets;
  for (int s = 0; s < kSeeds; ++s) {
    const ScenarioConfig scenario = small_scenario(static_cast<std::uint64_t>(s));
    fingerprints.push_back(trace_key_fingerprint(make_trace_key(scenario)));
    sets.push_back(generate_signal_trace_set(scenario));
  }

  std::atomic<int> start{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      start.fetch_add(1);
      while (start.load() < kThreads) {}  // line the threads up on the store
      for (int round = 0; round < 6; ++round) {
        const std::size_t s = checked_size((t + round) % kSeeds);
        (void)store.put(fingerprints[s], *sets[s]);
        const auto loaded =
            store.try_load(fingerprints[s], sets[s]->users(), sets[s]->slots());
        if (loaded != nullptr) {
          EXPECT_EQ(loaded->signal_dbm(0, 0), sets[s]->signal_dbm(0, 0));
          EXPECT_EQ(loaded->energy_per_kb(3, 79), sets[s]->energy_per_kb(3, 79));
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  EXPECT_EQ(store.rejections(), 0u);
  for (int s = 0; s < kSeeds; ++s) {
    EXPECT_TRUE(store.contains(fingerprints[checked_size(s)]));
  }
  std::filesystem::remove_all(dir);
}

TEST(TraceStoreConcurrent, CacheEvictSpillPromoteRaceStaysConsistent) {
  const std::string dir = fresh_dir("evict");
  TraceStore store(dir);
  // A budget of one entry forces every distinct-seed insert to evict (and
  // spill) the previous resident while other threads promote it back.
  const ScenarioConfig probe = small_scenario(0);
  TraceCache cache(SignalTraceSet::estimate_bytes(probe.users, probe.max_slots));
  cache.attach_store(&store);

  constexpr int kThreads = 6;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int round = 0; round < 8; ++round) {
        const auto seed = static_cast<std::uint64_t>((t + round) % 4);
        const auto set = cache.get_or_generate(small_scenario(seed));
        ASSERT_NE(set, nullptr);
        EXPECT_TRUE(set->link_derived());
        EXPECT_EQ(set->users(), probe.users);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  // Nothing on disk was ever invalid, and every distinct key either still
  // sits resident or was spilled on its way out.
  EXPECT_EQ(store.rejections(), 0u);
  EXPECT_EQ(cache.generations() + cache.promotions(), cache.misses());
  cache.spill_resident();
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    EXPECT_TRUE(store.contains(
        trace_key_fingerprint(make_trace_key(small_scenario(seed)))));
  }
  cache.attach_store(nullptr);
  std::filesystem::remove_all(dir);
}

TEST(TraceStoreConcurrent, SpillResidentRacesLookupsSafely) {
  const std::string dir = fresh_dir("flush");
  TraceStore store(dir);
  TraceCache cache;
  cache.attach_store(&store);

  std::atomic<bool> stop{false};
  std::thread flusher([&] {
    while (!stop.load()) cache.spill_resident();
  });
  std::vector<std::thread> lookups;
  for (int t = 0; t < 4; ++t) {
    lookups.emplace_back([&, t] {
      for (int round = 0; round < 6; ++round) {
        const auto seed = static_cast<std::uint64_t>((t * 7 + round) % 5);
        ASSERT_NE(cache.get_or_generate(small_scenario(seed)), nullptr);
      }
    });
  }
  for (std::thread& thread : lookups) thread.join();
  stop.store(true);
  flusher.join();

  cache.spill_resident();
  EXPECT_EQ(store.rejections(), 0u);
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    EXPECT_TRUE(store.contains(
        trace_key_fingerprint(make_trace_key(small_scenario(seed)))));
  }
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace jstream
