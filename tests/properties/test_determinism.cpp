// Property: simulations are exactly reproducible from the scenario seed —
// across reruns and regardless of other generators having been used — and
// different seeds genuinely change the workload.
#include <gtest/gtest.h>

#include "baselines/factory.hpp"
#include "sim/simulator.hpp"

namespace jstream {
namespace {

ScenarioConfig small_scenario(std::uint64_t seed) {
  ScenarioConfig config = paper_scenario(6, seed);
  config.video_min_mb = 5.0;
  config.video_max_mb = 12.0;
  config.max_slots = 2000;
  return config;
}

class Determinism : public ::testing::TestWithParam<std::string> {};

TEST_P(Determinism, IdenticalRunsForIdenticalSeeds) {
  const RunMetrics a = simulate(small_scenario(4242), make_scheduler(GetParam()));
  const RunMetrics b = simulate(small_scenario(4242), make_scheduler(GetParam()));
  EXPECT_EQ(a.slots_run, b.slots_run);
  EXPECT_DOUBLE_EQ(a.total_energy_mj(), b.total_energy_mj());
  EXPECT_DOUBLE_EQ(a.total_rebuffer_s(), b.total_rebuffer_s());
  ASSERT_EQ(a.slot_energy_mj.size(), b.slot_energy_mj.size());
  for (std::size_t i = 0; i < a.slot_energy_mj.size(); ++i) {
    ASSERT_DOUBLE_EQ(a.slot_energy_mj[i], b.slot_energy_mj[i]) << "slot " << i;
  }
  for (std::size_t i = 0; i < a.per_user.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.per_user[i].trans_mj, b.per_user[i].trans_mj);
    EXPECT_DOUBLE_EQ(a.per_user[i].rebuffer_s, b.per_user[i].rebuffer_s);
    EXPECT_EQ(a.per_user[i].session_slots, b.per_user[i].session_slots);
  }
}

TEST_P(Determinism, DifferentSeedsChangeTheRun) {
  const RunMetrics a = simulate(small_scenario(1), make_scheduler(GetParam()));
  const RunMetrics b = simulate(small_scenario(2), make_scheduler(GetParam()));
  EXPECT_NE(a.total_energy_mj(), b.total_energy_mj());
}

INSTANTIATE_TEST_SUITE_P(AllSchedulers, Determinism,
                         ::testing::ValuesIn(scheduler_names()),
                         [](const auto& suite_info) {
                           std::string name = suite_info.param;
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

}  // namespace
}  // namespace jstream
