// Theorem 1 (qualitative): under EMA, the Lyapunov weight V trades average
// energy PE against average rebuffering PC — PE falls toward a floor as V
// grows (PE <= E* + B/V) while PC grows with V (PC <= (B + V E*)/eps). Also
// checks queue stability: the virtual queues stay bounded over a session.
#include <gtest/gtest.h>

#include "baselines/factory.hpp"
#include "core/ema.hpp"
#include "sim/simulator.hpp"
#include "test_helpers.hpp"

namespace jstream {
namespace {

ScenarioConfig theorem_scenario() {
  ScenarioConfig config = paper_scenario(8, 55);
  config.video_min_mb = 20.0;
  config.video_max_mb = 40.0;
  config.max_slots = 3000;
  return config;
}

RunMetrics run_with_v(double v) {
  SchedulerOptions options;
  options.ema.v_weight = v;
  return simulate(theorem_scenario(), make_scheduler("ema-fast", options),
                  /*keep_series=*/false);
}

TEST(Theorem1, EnergyDecreasesAcrossTheVSweep) {
  const RunMetrics low = run_with_v(0.002);
  const RunMetrics high = run_with_v(0.5);
  EXPECT_LT(high.avg_energy_per_user_slot_mj(), low.avg_energy_per_user_slot_mj());
}

TEST(Theorem1, RebufferingGrowsAcrossTheVSweep) {
  const RunMetrics low = run_with_v(0.002);
  const RunMetrics high = run_with_v(0.5);
  EXPECT_GT(high.avg_rebuffer_per_user_slot_s(),
            low.avg_rebuffer_per_user_slot_s());
}

TEST(Theorem1, TradeoffIsRoughlyMonotoneAcrossIntermediateV) {
  // Allow small non-monotonic wiggles from the finite horizon; the endpoints
  // of each adjacent pair must not invert by more than 10%.
  double prev_pe = run_with_v(0.005).avg_energy_per_user_slot_mj();
  for (double v : {0.02, 0.08, 0.3}) {
    const double pe = run_with_v(v).avg_energy_per_user_slot_mj();
    EXPECT_LT(pe, prev_pe * 1.10) << "V = " << v;
    prev_pe = pe;
  }
}

TEST(Theorem1, VirtualQueuesStayBoundedOverASession) {
  // Drive EMA directly and track its queues: with content available and a
  // feasible system, |PC_i| must not diverge (queue stability, Eq. 25-26).
  EmaScheduler ema(EmaConfig{0.05});
  const std::size_t n = 4;
  ema.reset(n);
  Rng rng(77);
  double worst = 0.0;
  for (std::int64_t slot = 0; slot < 2000; ++slot) {
    std::vector<testing::TestUser> users;
    for (std::size_t i = 0; i < n; ++i) {
      testing::TestUser user;
      user.signal_dbm = rng.uniform(-110.0, -50.0);
      user.bitrate_kbps = 400.0;
      user.rrc_promoted = slot > 0;
      users.push_back(user);
    }
    (void)ema.allocate(testing::make_context(users, 20000.0, SlotParams{}, slot));
    for (std::size_t i = 0; i < n; ++i) {
      worst = std::max(worst, std::abs(ema.queues().value(i)));
    }
  }
  // Queues oscillate within a V- and channel-dependent band; divergence would
  // reach hundreds of seconds over 2000 slots.
  EXPECT_LT(worst, 100.0);
}

}  // namespace
}  // namespace jstream
