// Fault-layer properties, checked for every factory scheduler:
//   - zero fault intensity is the exact identity — RunMetrics (aggregates,
//     per-user totals, and full per-slot series) match an unfaulted run
//     bit for bit, and an inactive schedule attached as a hook changes
//     nothing either;
//   - a departed user accrues no delivery, energy, or rebuffering after its
//     abort slot;
//   - the paper-invariant validator accepts every slot of a moderately
//     faulted run (the degraded cell stays inside the Eq. 1/2/7/8 feasibility
//     region as redefined by the fault layer).
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "analysis/invariant_checker.hpp"
#include "baselines/default_scheduler.hpp"
#include "baselines/factory.hpp"
#include "gateway/framework.hpp"
#include "sim/fault.hpp"
#include "sim/simulator.hpp"
#include "test_helpers.hpp"

namespace jstream {
namespace {

using testing::make_collector;
using testing::make_endpoints;

ScenarioConfig small_scenario(std::uint64_t seed = 77) {
  ScenarioConfig config = paper_scenario(/*users=*/5, seed);
  config.video_min_mb = 4.0;
  config.video_max_mb = 10.0;
  config.max_slots = 1200;
  return config;
}

FaultConfig medium_faults() {
  FaultConfig faults;
  faults.outage_rate_per_kslot = 6.0;
  faults.staleness_rate_per_kslot = 10.0;
  faults.departure_fraction = 0.3;
  faults.capacity_rate_per_kslot = 3.0;
  faults.capacity_min_slots = 10;
  faults.capacity_max_slots = 60;
  faults.capacity_scale = 0.5;
  return faults;
}

void expect_identical(const RunMetrics& a, const RunMetrics& b) {
  ASSERT_EQ(a.slots_run, b.slots_run);
  ASSERT_EQ(a.per_user.size(), b.per_user.size());
  for (std::size_t i = 0; i < a.per_user.size(); ++i) {
    EXPECT_EQ(a.per_user[i].trans_mj, b.per_user[i].trans_mj) << i;
    EXPECT_EQ(a.per_user[i].tail_mj, b.per_user[i].tail_mj) << i;
    EXPECT_EQ(a.per_user[i].rebuffer_s, b.per_user[i].rebuffer_s) << i;
    EXPECT_EQ(a.per_user[i].delivered_kb, b.per_user[i].delivered_kb) << i;
    EXPECT_EQ(a.per_user[i].session_slots, b.per_user[i].session_slots) << i;
    EXPECT_EQ(a.per_user[i].tx_slots, b.per_user[i].tx_slots) << i;
    EXPECT_EQ(a.per_user[i].playback_finished, b.per_user[i].playback_finished) << i;
  }
  ASSERT_EQ(a.slot_energy_mj.size(), b.slot_energy_mj.size());
  for (std::size_t i = 0; i < a.slot_energy_mj.size(); ++i) {
    ASSERT_EQ(a.slot_energy_mj[i], b.slot_energy_mj[i]) << "slot " << i;
  }
  ASSERT_EQ(a.slot_fairness, b.slot_fairness);
  ASSERT_EQ(a.rebuffer_samples_s, b.rebuffer_samples_s);
}

class FaultProperty : public ::testing::TestWithParam<std::string> {};

TEST_P(FaultProperty, ZeroIntensityIsBitIdenticalToTheBaseline) {
  // Rates of zero (even with a nonzero salt) must leave the run untouched:
  // no hook attaches, no fault RNG draw happens, and the metrics — down to
  // every per-slot sample — equal the unfaulted scenario's exactly.
  ScenarioConfig zero = small_scenario();
  zero.faults.salt = 99;  // salt without intensity is still inactive
  const RunMetrics faulted =
      simulate(zero, make_scheduler(GetParam()), /*keep_series=*/true);
  const RunMetrics baseline =
      simulate(small_scenario(), make_scheduler(GetParam()), /*keep_series=*/true);
  expect_identical(faulted, baseline);
}

TEST_P(FaultProperty, ValidatorAcceptsModeratelyFaultedRuns) {
  // The invariant checker re-derives Eq. 1/2/7/8 and the RRC energy terms on
  // every slot; a fault-layer bug (caps not rewritten, truth not restored,
  // departed users still charged) surfaces as a throw here.
  struct ValidationGuard {
    bool previous = analysis::validation_enabled();
    ValidationGuard() { analysis::set_validation_enabled(true); }
    ~ValidationGuard() { analysis::set_validation_enabled(previous); }
  } guard;
  ScenarioConfig config = small_scenario();
  config.faults = medium_faults();
  const RunMetrics metrics = simulate(config, make_scheduler(GetParam()));
  EXPECT_GT(metrics.slots_run, 0);
}

TEST_P(FaultProperty, FaultedRunsAreDeterministic) {
  ScenarioConfig config = small_scenario();
  config.faults = medium_faults();
  const RunMetrics a = simulate(config, make_scheduler(GetParam()), true);
  const RunMetrics b = simulate(config, make_scheduler(GetParam()), true);
  expect_identical(a, b);
}

INSTANTIATE_TEST_SUITE_P(AllSchedulers, FaultProperty,
                         ::testing::ValuesIn(scheduler_names()),
                         [](const auto& suite_info) {
                           std::string name = suite_info.param;
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

TEST(FaultIdentity, InactiveScheduleAttachedAsAHookChangesNothing) {
  // Stronger than the config-level identity: even with the hook physically on
  // the slot path, an empty schedule must leave every outcome bit-identical.
  const std::vector<double> signals{-65.0, -80.0, -95.0};
  const BaseStation bs(5000.0);

  auto baseline_endpoints = make_endpoints(signals, 400.0, 20000.0);
  Framework baseline(make_collector(), std::make_unique<DefaultScheduler>(),
                     SchedulingMode::kEnergyMinimization, signals.size());

  auto hooked_endpoints = make_endpoints(signals, 400.0, 20000.0);
  Framework hooked(make_collector(), std::make_unique<DefaultScheduler>(),
                   SchedulingMode::kEnergyMinimization, signals.size());
  FaultInjector injector(std::make_shared<const FaultSchedule>(
      FaultSchedule(signals.size(), /*horizon=*/200, /*outage_dbm=*/-112.0)));
  hooked.attach_fault_hook(&injector);

  for (std::int64_t slot = 0; slot < 200; ++slot) {
    const SlotOutcome& a = baseline.run_slot(slot, baseline_endpoints, bs);
    const SlotOutcome& b = hooked.run_slot(slot, hooked_endpoints, bs);
    for (std::size_t i = 0; i < signals.size(); ++i) {
      ASSERT_EQ(a.units[i], b.units[i]) << "slot " << slot << " user " << i;
      ASSERT_EQ(a.kb[i], b.kb[i]) << "slot " << slot << " user " << i;
      ASSERT_EQ(a.trans_mj[i], b.trans_mj[i]) << "slot " << slot << " user " << i;
      ASSERT_EQ(a.tail_mj[i], b.tail_mj[i]) << "slot " << slot << " user " << i;
      ASSERT_EQ(a.rebuffer_s[i], b.rebuffer_s[i]) << "slot " << slot << " user " << i;
    }
  }
}

TEST(FaultDeparture, DepartedUsersAccrueNothingAfterTheAbortSlot) {
  constexpr std::int64_t kDeparture = 10;
  constexpr std::int64_t kHorizon = 60;
  const std::vector<double> signals{-70.0, -85.0};
  auto endpoints = make_endpoints(signals, 400.0, 1e6);  // never drains
  const BaseStation bs(5000.0);

  FaultSchedule schedule(signals.size(), kHorizon, -112.0);
  schedule.set_departure(0, kDeparture);
  // One departure path: the abort slot lives on the endpoint (the Simulator
  // stamps it from the schedule); the collector raises the flag.
  endpoints[0].depart_at(kDeparture);
  FaultInjector injector(
      std::make_shared<const FaultSchedule>(std::move(schedule)));
  Framework framework(make_collector(), std::make_unique<DefaultScheduler>(),
                      SchedulingMode::kEnergyMinimization, signals.size());
  framework.attach_fault_hook(&injector);

  MetricsCollector metrics(signals.size());
  double user0_pre_energy = 0.0;
  for (std::int64_t slot = 0; slot < kHorizon; ++slot) {
    const SlotOutcome& outcome = framework.run_slot(slot, endpoints, bs);
    metrics.record_slot(framework.last_context(), outcome);
    if (slot < kDeparture) {
      user0_pre_energy += outcome.trans_mj[0] + outcome.tail_mj[0];
    } else {
      EXPECT_EQ(outcome.units[0], 0) << slot;
      EXPECT_EQ(outcome.kb[0], 0.0) << slot;
      EXPECT_EQ(outcome.trans_mj[0], 0.0) << slot;
      EXPECT_EQ(outcome.tail_mj[0], 0.0) << slot;
      EXPECT_EQ(outcome.rebuffer_s[0], 0.0) << slot;
      EXPECT_TRUE(framework.last_context().users[0].departed) << slot;
      // The survivor keeps streaming.
      EXPECT_GT(outcome.kb[1], 0.0) << slot;
    }
  }
  EXPECT_GT(user0_pre_energy, 0.0);  // it really was active before the abort

  const RunMetrics run = metrics.finish();
  // Totals froze at the abort: exactly the pre-departure accrual, and the
  // session-slot clock stopped with them.
  EXPECT_DOUBLE_EQ(run.per_user[0].energy_mj(), user0_pre_energy);
  EXPECT_EQ(run.per_user[0].session_slots, kDeparture);
  EXPECT_FALSE(run.per_user[0].playback_finished);
  EXPECT_EQ(run.per_user[1].session_slots, kHorizon);
}

}  // namespace
}  // namespace jstream
