// EMA solver comparison on realistic slot problems: instead of adversarial
// random costs (tests/core/test_ema_fast.cpp), draw the costs exactly as a
// simulation would — from the paper link model, random signals/queues/idle
// times — and require the greedy to match the DP's objective within a tight
// relative margin there.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/ema.hpp"
#include "core/ema_fast.hpp"
#include "test_helpers.hpp"
#include "common/units.hpp"

namespace jstream {
namespace {

using testing::TestUser;
using testing::make_context;

double total_cost(const EmaSlotCosts& costs, const Allocation& alloc) {
  double total = 0.0;
  for (std::size_t i = 0; i < alloc.units.size(); ++i) {
    total += ema_cost(costs, i, alloc.units[i]);
  }
  return total;
}

class EmaSolverRealistic : public ::testing::TestWithParam<double> {};

TEST_P(EmaSolverRealistic, GreedyTracksDpOnSimulationShapedCosts) {
  const double v_weight = GetParam();
  Rng rng(2077);
  double total_dp = 0.0;
  double total_greedy = 0.0;
  for (int trial = 0; trial < 100; ++trial) {
    const std::size_t n = 10 + checked_size(rng.uniform_int(0, 30));
    std::vector<TestUser> users;
    LyapunovQueues queues(n);
    for (std::size_t i = 0; i < n; ++i) {
      TestUser user;
      user.signal_dbm = rng.uniform(-110.0, -50.0);
      user.bitrate_kbps = rng.uniform(300.0, 600.0);
      user.rrc_promoted = rng.uniform() < 0.9;
      user.rrc_idle_s = rng.uniform(0.0, 10.0);
      users.push_back(user);
      // Realistic queue range: a few seconds of surplus or pressure. Drive
      // the queue to PC = pc through valid Eq. 16 updates (t >= 0).
      double pc = rng.uniform(-10.0, 5.0);
      while (pc > 1.0) {
        queues.update(i, 1.0, 0.0);  // PC += 1
        pc -= 1.0;
      }
      queues.update(i, 1.0, 1.0 - pc);  // PC += pc (t = 1 - pc >= 0)
    }
    const SlotContext ctx = make_context(users, 20000.0);
    const EmaSlotCosts costs = compute_ema_slot_costs(ctx, queues, v_weight);
    std::vector<std::int64_t> caps;
    for (const auto& user : ctx.users) caps.push_back(user.alloc_cap_units);

    const double dp =
        total_cost(costs, solve_min_cost_dp(costs, caps, ctx.capacity_units));
    const double greedy =
        total_cost(costs, solve_min_cost_greedy(costs, caps, ctx.capacity_units));
    ASSERT_GE(greedy, dp - 1e-9);
    total_dp += dp;
    total_greedy += greedy;
  }
  // Aggregate objective gap on simulation-shaped instances stays under 2%.
  const double scale = std::max(std::abs(total_dp), 1.0);
  EXPECT_LT((total_greedy - total_dp) / scale, 0.02)
      << "V = " << v_weight << ": dp " << total_dp << " greedy " << total_greedy;
}

INSTANTIATE_TEST_SUITE_P(VSweep, EmaSolverRealistic,
                         ::testing::Values(0.005, 0.05, 0.5),
                         [](const auto& suite_info) {
                           std::string name =
                               "V" + std::to_string(suite_info.param);
                           for (char& c : name) {
                             if (c == '.') c = '_';
                           }
                           return name;
                         });

}  // namespace
}  // namespace jstream
