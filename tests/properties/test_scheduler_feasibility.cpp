// Property: every scheduler produces allocations satisfying constraints (1)
// and (2) on randomized cross-layer snapshots — the core safety contract of
// the Scheduler interface. Parameterized over the whole factory.
#include <gtest/gtest.h>

#include "baselines/factory.hpp"
#include "common/rng.hpp"
#include "net/allocation.hpp"
#include "test_helpers.hpp"
#include "common/units.hpp"

namespace jstream {
namespace {

using testing::TestUser;
using testing::make_context;

class SchedulerFeasibility : public ::testing::TestWithParam<std::string> {};

TEST_P(SchedulerFeasibility, HoldsOnRandomSnapshots) {
  auto scheduler = make_scheduler(GetParam());
  Rng rng(0xfea5ULL);
  for (int trial = 0; trial < 30; ++trial) {
    const auto n = checked_size(rng.uniform_int(1, 12));
    scheduler->reset(n);
    const double capacity = rng.uniform(500.0, 25000.0);
    for (std::int64_t slot = 0; slot < 20; ++slot) {
      std::vector<TestUser> users;
      for (std::size_t i = 0; i < n; ++i) {
        TestUser user;
        user.signal_dbm = rng.uniform(-110.0, -50.0);
        user.bitrate_kbps = rng.uniform(300.0, 600.0);
        user.remaining_kb = rng.uniform(0.0, 1e5);
        user.buffer_s = rng.uniform(0.0, 60.0);
        user.rrc_idle_s = rng.uniform(0.0, 10.0);
        user.rrc_promoted = rng.uniform() < 0.7;
        users.push_back(user);
      }
      const SlotContext ctx = make_context(users, capacity, SlotParams{}, slot);
      const Allocation alloc = scheduler->allocate(ctx);
      std::vector<std::int64_t> caps;
      for (const auto& user : ctx.users) caps.push_back(user.alloc_cap_units);
      const FeasibilityReport report =
          check_feasible(alloc, caps, ctx.capacity_units);
      ASSERT_TRUE(report.feasible)
          << GetParam() << " trial " << trial << " slot " << slot << ": "
          << report.violation;
    }
  }
}

TEST_P(SchedulerFeasibility, ZeroCapacityYieldsEmptyAllocation) {
  auto scheduler = make_scheduler(GetParam());
  scheduler->reset(3);
  SlotContext ctx = make_context(
      {TestUser{-70.0, 400.0}, TestUser{-80.0, 500.0}, TestUser{-90.0, 300.0}});
  ctx.capacity_units = 0;
  EXPECT_EQ(scheduler->allocate(ctx).total_units(), 0);
}

TEST_P(SchedulerFeasibility, NoAllocationToExhaustedUsers) {
  auto scheduler = make_scheduler(GetParam());
  scheduler->reset(2);
  std::vector<TestUser> users{TestUser{-70.0, 400.0}, TestUser{-70.0, 400.0}};
  users[0].remaining_kb = 0.0;
  const SlotContext ctx = make_context(users);
  EXPECT_EQ(scheduler->allocate(ctx).units[0], 0);
}

INSTANTIATE_TEST_SUITE_P(AllSchedulers, SchedulerFeasibility,
                         ::testing::ValuesIn(scheduler_names()),
                         [](const auto& suite_info) {
                           std::string name = suite_info.param;
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

}  // namespace
}  // namespace jstream
