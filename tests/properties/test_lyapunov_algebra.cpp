// Numerical verification of the Lyapunov algebra behind Theorem 1.
//
// Eq. 17/18: with PC_i(n+1) = PC_i(n) + (tau - t_i(n)),
//   L(n+1) - L(n) = sum_i [ PC_i(n)(tau - t_i(n)) + 1/2 (tau - t_i(n))^2 ]
// exactly, and 1/2 sum (tau - t_i)^2 <= B = 1/2 sum (tau^2 + t_max^2), so the
// drift bound Eq. 18 holds slot by slot. These tests drive EMA on random
// snapshots and check the identity and the bound on every transition.
#include <gtest/gtest.h>

#include "core/ema.hpp"
#include "core/lyapunov.hpp"
#include "common/rng.hpp"
#include "test_helpers.hpp"

namespace jstream {
namespace {

using testing::TestUser;
using testing::make_context;

TEST(LyapunovAlgebra, DriftIdentityHoldsExactly) {
  Rng rng(90);
  LyapunovQueues queues(3);
  const double tau = 1.0;
  for (int step = 0; step < 500; ++step) {
    const double l_before = queues.lyapunov_function();
    std::vector<double> t(3);
    double expected_delta = 0.0;
    for (std::size_t i = 0; i < 3; ++i) {
      t[i] = rng.uniform(0.0, 4.0);
      const double diff = tau - t[i];
      expected_delta += queues.value(i) * diff + 0.5 * diff * diff;
    }
    for (std::size_t i = 0; i < 3; ++i) queues.update(i, tau, t[i]);
    const double l_after = queues.lyapunov_function();
    ASSERT_NEAR(l_after - l_before, expected_delta, 1e-6 * (1.0 + std::abs(l_after)));
  }
}

TEST(LyapunovAlgebra, DriftBoundEq18HoldsSlotwise) {
  // Delta(n) <= B + sum PC_i (tau - t_i) whenever t_i <= t_max_i.
  Rng rng(91);
  const double tau = 1.0;
  const std::vector<double> t_max{3.0, 5.0, 2.0};
  const double b = lyapunov_drift_bound(tau, t_max);
  LyapunovQueues queues(3);
  for (int step = 0; step < 500; ++step) {
    const double l_before = queues.lyapunov_function();
    std::vector<double> t(3);
    double linear_term = 0.0;
    for (std::size_t i = 0; i < 3; ++i) {
      t[i] = rng.uniform(0.0, t_max[i]);
      linear_term += queues.value(i) * (tau - t[i]);
    }
    for (std::size_t i = 0; i < 3; ++i) queues.update(i, tau, t[i]);
    const double drift = queues.lyapunov_function() - l_before;
    ASSERT_LE(drift, b + linear_term + 1e-9);
  }
}

TEST(LyapunovAlgebra, EmaMinimizesTheSlotObjectiveOverFeasibleSet) {
  // The drift-plus-penalty bound is minimized when the slot problem is solved
  // exactly: verify EMA's DP choice scores no worse than 200 random feasible
  // allocations under the full (un-reduced) objective
  //   V*E(n) + sum PC_i (tau - t_i).
  Rng rng(92);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 4;
    std::vector<TestUser> users;
    for (std::size_t i = 0; i < n; ++i) {
      TestUser user;
      user.signal_dbm = rng.uniform(-110.0, -50.0);
      user.bitrate_kbps = rng.uniform(300.0, 600.0);
      user.rrc_promoted = true;
      user.rrc_idle_s = rng.uniform(0.0, 6.0);
      users.push_back(user);
    }
    const SlotContext ctx = make_context(users, 2500.0);
    LyapunovQueues queues(n);
    for (std::size_t i = 0; i < n; ++i) {
      queues.update(i, 1.0, rng.uniform(0.0, 2.5));
    }
    const double v_weight = 0.05;
    const EmaSlotCosts costs = compute_ema_slot_costs(ctx, queues, v_weight);
    std::vector<std::int64_t> caps;
    for (const auto& user : ctx.users) caps.push_back(user.alloc_cap_units);
    const Allocation chosen = solve_min_cost_dp(costs, caps, ctx.capacity_units);

    const auto objective = [&](const Allocation& alloc) {
      double total = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        total += ema_cost(costs, i, alloc.units[i]) +
                 queues.value(i) * ctx.params.tau_s;  // restore the dropped term
      }
      return total;
    };
    const double best = objective(chosen);
    for (int sample = 0; sample < 200; ++sample) {
      Allocation random_alloc = Allocation::zeros(n);
      std::int64_t left = ctx.capacity_units;
      for (std::size_t i = 0; i < n; ++i) {
        const std::int64_t phi = rng.uniform_int(0, std::min(caps[i], left));
        random_alloc.units[i] = phi;
        left -= phi;
      }
      ASSERT_LE(best, objective(random_alloc) + 1e-9)
          << "trial " << trial << " sample " << sample;
    }
  }
}

}  // namespace
}  // namespace jstream
