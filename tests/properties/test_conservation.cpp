// Conservation properties of full simulation runs, for every scheduler:
// bytes delivered equal the content size, playback completes exactly,
// per-slot energy series sums to the per-user totals, and rebuffering
// accounting is internally consistent.
#include <gtest/gtest.h>

#include "baselines/factory.hpp"
#include "common/units.hpp"
#include "sim/simulator.hpp"

namespace jstream {
namespace {

ScenarioConfig small_scenario(std::uint64_t seed) {
  ScenarioConfig config = paper_scenario(5, seed);
  config.video_min_mb = 8.0;
  config.video_max_mb = 15.0;
  config.max_slots = 3000;
  return config;
}

class Conservation : public ::testing::TestWithParam<std::string> {};

TEST_P(Conservation, BytesAndPlaybackConserved) {
  const ScenarioConfig config = small_scenario(13);
  const RunMetrics metrics = simulate(config, make_scheduler(GetParam()));
  const auto endpoints = build_endpoints(config);
  ASSERT_EQ(metrics.per_user.size(), endpoints.size());
  for (std::size_t i = 0; i < endpoints.size(); ++i) {
    // Every byte of the session (and no more) crossed the air interface.
    EXPECT_NEAR(metrics.per_user[i].delivered_kb, endpoints[i].session.size_kb(), 1e-6)
        << GetParam() << " user " << i;
    EXPECT_TRUE(metrics.per_user[i].playback_finished);
  }
}

TEST_P(Conservation, SlotEnergySeriesSumsToTotals) {
  const RunMetrics metrics = simulate(small_scenario(17), make_scheduler(GetParam()));
  double series_sum = 0.0;
  for (double mj : metrics.slot_energy_mj) series_sum += mj;
  EXPECT_NEAR(series_sum, metrics.total_energy_mj(),
              1e-6 * std::max(1.0, metrics.total_energy_mj()));
}

TEST_P(Conservation, RebufferSamplesSumToTotals) {
  const RunMetrics metrics = simulate(small_scenario(19), make_scheduler(GetParam()));
  double samples_sum = 0.0;
  for (double s : metrics.rebuffer_samples_s) samples_sum += s;
  EXPECT_NEAR(samples_sum, metrics.total_rebuffer_s(), 1e-9);
}

TEST_P(Conservation, EnergyIsNonNegativeAndTailBounded) {
  const RunMetrics metrics = simulate(small_scenario(23), make_scheduler(GetParam()));
  const RadioProfile radio = paper_3g_profile();
  for (const auto& user : metrics.per_user) {
    EXPECT_GE(user.trans_mj, 0.0);
    EXPECT_GE(user.tail_mj, 0.0);
    // Each tail period is bounded by Pd*T1 + Pf*T2; a user cannot pay more
    // tail than one full tail per transmission gap, i.e. per tx slot + 1.
    EXPECT_LE(user.tail_mj, radio.max_tail_energy_mj() *
                                as_double(user.tx_slots + 1));
  }
}

TEST_P(Conservation, SessionSlotsCoverPlaybackPlusStalls) {
  const ScenarioConfig config = small_scenario(29);
  const RunMetrics metrics = simulate(config, make_scheduler(GetParam()));
  const auto endpoints = build_endpoints(config);
  for (std::size_t i = 0; i < endpoints.size(); ++i) {
    const double playback = endpoints[i].session.total_playback_s();
    const double stalled = metrics.per_user[i].rebuffer_s;
    const auto slots = as_double(metrics.per_user[i].session_slots);
    // Gamma_i ~ playback + stalls (within a slot of rounding each way).
    EXPECT_GE(slots + 2.0, playback + stalled) << GetParam() << " user " << i;
    EXPECT_LE(slots, playback + stalled + 2.0) << GetParam() << " user " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(AllSchedulers, Conservation,
                         ::testing::ValuesIn(scheduler_names()),
                         [](const auto& suite_info) {
                           std::string name = suite_info.param;
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

}  // namespace
}  // namespace jstream
