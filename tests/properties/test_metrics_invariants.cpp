// Cross-invariants of RunMetrics over the full preset x scheduler grid:
// metrics derived two different ways must agree, bounds implied by the model
// must hold regardless of scenario features (arrivals, VBR, waves, LTE, ...).
#include <gtest/gtest.h>

#include <tuple>

#include "baselines/factory.hpp"
#include "sim/catalog.hpp"
#include "sim/simulator.hpp"
#include "common/units.hpp"

namespace jstream {
namespace {

using GridParam = std::tuple<std::string, std::string>;  // (preset, scheduler)

class MetricsInvariants : public ::testing::TestWithParam<GridParam> {
 protected:
  static RunMetrics run(const std::string& preset, const std::string& scheduler) {
    ScenarioConfig config = make_catalog_scenario(preset, 5, 23);
    config.video_min_mb = 6.0;
    config.video_max_mb = 12.0;
    config.max_slots = 3000;
    if (config.arrival_spread_slots > 0) config.arrival_spread_slots = 300;
    return simulate(config, make_scheduler(scheduler));
  }
};

TEST_P(MetricsInvariants, AggregatesAgreeWithPerUserSums) {
  const auto& [preset, scheduler] = GetParam();
  const RunMetrics m = run(preset, scheduler);
  double trans = 0.0;
  double tail = 0.0;
  double rebuffer = 0.0;
  for (const auto& user : m.per_user) {
    trans += user.trans_mj;
    tail += user.tail_mj;
    rebuffer += user.rebuffer_s;
  }
  EXPECT_DOUBLE_EQ(m.total_trans_mj(), trans);
  EXPECT_DOUBLE_EQ(m.total_tail_mj(), tail);
  EXPECT_DOUBLE_EQ(m.total_rebuffer_s(), rebuffer);
  EXPECT_DOUBLE_EQ(m.total_energy_mj(), trans + tail);
}

TEST_P(MetricsInvariants, PhysicalBoundsHold) {
  const auto& [preset, scheduler] = GetParam();
  const RunMetrics m = run(preset, scheduler);
  for (const auto& user : m.per_user) {
    // Rebuffering cannot exceed one slot per session slot.
    EXPECT_LE(user.rebuffer_s, as_double(user.session_slots) + 1e-9);
    // A user cannot transmit in more slots than the run had.
    EXPECT_LE(user.tx_slots, m.slots_run);
    EXPECT_GE(user.delivered_kb, 0.0);
  }
  // Fairness stays within Jain bounds.
  for (double f : m.slot_fairness) {
    EXPECT_GE(f, 1.0 / as_double(m.per_user.size()) - 1e-9);
    EXPECT_LE(f, 1.0 + 1e-9);
  }
  // Per-slot rebuffer samples are within [0, tau].
  for (double c : m.rebuffer_samples_s) {
    EXPECT_GE(c, 0.0);
    EXPECT_LE(c, 1.0 + 1e-9);
  }
}

TEST_P(MetricsInvariants, EnergyPriceWithinModelRange) {
  const auto& [preset, scheduler] = GetParam();
  const RunMetrics m = run(preset, scheduler);
  const LinkModel link = make_paper_link_model();
  const double best = link.power->energy_per_kb(-50.0);
  const double worst = link.power->energy_per_kb(-110.0);
  for (const auto& user : m.per_user) {
    if (user.delivered_kb <= 0.0) continue;
    const double price = user.trans_mj / user.delivered_kb;
    EXPECT_GE(price, best - 1e-9);
    EXPECT_LE(price, worst + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    PresetSchedulerGrid, MetricsInvariants,
    ::testing::Combine(::testing::Values("paper", "lte", "vbr", "churn", "wave",
                                         "gauss-markov", "stress"),
                       ::testing::Values("default", "rtma", "ema-fast")),
    [](const auto& suite_info) {
      std::string name = std::get<0>(suite_info.param) + "_" +
                         std::get<1>(suite_info.param);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace jstream
