// Forecast error model (sim/forecast.hpp):
//   * seed-pure: the same (scenario, spec) always produces the same noisy
//     forecast, and a zero-error spec is bit-identical to the exact overload;
//   * stream discipline: forecast noise draws from its own split Rng root, so
//     endpoints and the fault schedule replay identically whatever the spec,
//     and distinct salts / users get independent noise;
//   * transform semantics: staleness lags the forecast, bias shifts it
//     (clamped to the physical dBm range), track_fault_staleness freezes it
//     across stale-feedback windows;
//   * fingerprints: inactive specs fingerprint to 0 (perfect-forecast cache
//     entries alias prediction-free ones by design), active specs separate;
//   * oracle gap: on a single-crest trace scenario the predictive scheduler's
//     energy (hence its gap to the fixed oracle bound) is monotonically
//     non-improving as sigma grows — noise can only blur the crest.
#include "sim/forecast.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/error.hpp"
#include "radio/signal_model.hpp"
#include "sim/experiment.hpp"
#include "sim/fault.hpp"
#include "sim/scenario.hpp"
#include "sim/trace_cache.hpp"
#include "common/units.hpp"

namespace jstream {
namespace {

ScenarioConfig small_scenario(std::uint64_t seed = 42) {
  ScenarioConfig config = paper_scenario(4, seed);
  config.max_slots = 200;
  return config;
}

TEST(ForecastNoise, SameSeedSameForecast) {
  const ScenarioConfig config = small_scenario();
  ForecastErrorSpec spec;
  spec.sigma_dbm = 5.0;
  spec.staleness_slots = 3;
  const auto a = make_signal_forecast(config, 200, spec);
  const auto b = make_signal_forecast(config, 200, spec);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]) << "user " << i;
}

TEST(ForecastNoise, ZeroErrorBitIdenticalToExact) {
  const ScenarioConfig config = small_scenario();
  const auto exact = make_signal_forecast(config, 200);
  const auto noisy = make_signal_forecast(config, 200, ForecastErrorSpec{});
  ASSERT_EQ(exact.size(), noisy.size());
  for (std::size_t i = 0; i < exact.size(); ++i) {
    EXPECT_EQ(exact[i], noisy[i]) << "user " << i;
  }
}

TEST(ForecastNoise, NoiseDoesNotDisturbEndpointsOrFaultSchedule) {
  // The forecast draws from its own Rng root; building a noisy forecast must
  // leave the endpoint replay and the fault schedule bit-identical — the
  // scenario seed fans out by value, never through shared generator state.
  ScenarioConfig config = small_scenario();
  config.faults.staleness_rate_per_kslot = 40.0;
  config.faults.staleness_max_slots = 20;

  const auto endpoints_before = build_endpoints(config);
  const FaultSchedule faults_before = make_fault_schedule(config);
  ForecastErrorSpec spec;
  spec.sigma_dbm = 9.0;
  const auto noisy = make_signal_forecast(config, 200, spec);
  const auto endpoints_after = build_endpoints(config);
  const FaultSchedule faults_after = make_fault_schedule(config);

  ASSERT_EQ(endpoints_before.size(), endpoints_after.size());
  for (std::size_t i = 0; i < endpoints_before.size(); ++i) {
    for (std::int64_t slot = 0; slot < 200; ++slot) {
      ASSERT_DOUBLE_EQ(endpoints_before[i].signal->signal_dbm(slot),
                       endpoints_after[i].signal->signal_dbm(slot));
    }
    const auto before = faults_before.stale_windows(i);
    const auto after = faults_after.stale_windows(i);
    ASSERT_EQ(before.size(), after.size());
    for (std::size_t w = 0; w < before.size(); ++w) {
      EXPECT_EQ(before[w].begin, after[w].begin);
      EXPECT_EQ(before[w].end, after[w].end);
    }
  }
  // And the noise really fired (the disjointness claim is non-vacuous).
  const auto exact = make_signal_forecast(config, 200);
  EXPECT_NE(exact, noisy);
}

TEST(ForecastNoise, SaltsAndUsersGetIndependentStreams) {
  const ScenarioConfig config = small_scenario();
  ForecastErrorSpec spec;
  spec.sigma_dbm = 6.0;
  const auto base = make_signal_forecast(config, 200, spec);
  spec.salt = 1;
  const auto salted = make_signal_forecast(config, 200, spec);
  EXPECT_NE(base, salted);
  // Per-user noise differs even where the exact signals coincide: compare the
  // noise residuals of two users on a shared constant trace.
  ScenarioConfig flat = config;
  flat.signal_kind = SignalKind::kTrace;
  flat.trace_dbm.assign(8, -80.0);  // rotation-invariant: all users identical
  ForecastErrorSpec noisy;
  noisy.sigma_dbm = 6.0;
  const auto f = make_signal_forecast(flat, 64, noisy);
  EXPECT_NE(f[0], f[1]);
}

TEST(ForecastNoise, StalenessLagsAndBiasShifts) {
  const ScenarioConfig config = small_scenario();
  const auto exact = make_signal_forecast(config, 120);
  ForecastErrorSpec spec;
  spec.staleness_slots = 7;
  const auto stale = make_signal_forecast(config, 120, spec);
  for (std::size_t i = 0; i < exact.size(); ++i) {
    for (std::size_t m = 0; m < 120; ++m) {
      const double want = m < 7 ? exact[i][0] : exact[i][m - 7];
      ASSERT_DOUBLE_EQ(stale[i][m], want) << "user " << i << " slot " << m;
    }
  }
  ForecastErrorSpec biased;
  biased.bias_dbm = 4.5;
  const auto shifted = make_signal_forecast(config, 120, biased);
  for (std::size_t i = 0; i < exact.size(); ++i) {
    for (std::size_t m = 0; m < 120; ++m) {
      ASSERT_DOUBLE_EQ(shifted[i][m],
                       std::min(exact[i][m] + 4.5, kMaxSignalDbm));
    }
  }
}

TEST(ForecastNoise, TrackFaultStalenessFreezesStaleWindows) {
  ScenarioConfig config = small_scenario(7);
  config.faults.staleness_rate_per_kslot = 60.0;
  config.faults.staleness_min_slots = 5;
  config.faults.staleness_max_slots = 25;
  const auto exact = make_signal_forecast(config, 200);
  ForecastErrorSpec spec;
  spec.track_fault_staleness = true;
  const auto frozen = make_signal_forecast(config, 200, spec);
  const FaultSchedule schedule = make_fault_schedule(config);
  bool saw_window = false;
  for (std::size_t i = 0; i < exact.size(); ++i) {
    for (const FaultInterval& window : schedule.stale_windows(i)) {
      const std::int64_t begin = std::max<std::int64_t>(window.begin, 0);
      const std::int64_t end = std::min<std::int64_t>(window.end, 200);
      if (begin >= end) continue;
      saw_window = true;
      const double held = exact[i][checked_size(std::max<std::int64_t>(begin - 1, 0))];
      for (std::int64_t m = begin; m < end; ++m) {
        ASSERT_DOUBLE_EQ(frozen[i][checked_size(m)], held)
            << "user " << i << " slot " << m;
      }
    }
  }
  EXPECT_TRUE(saw_window) << "fault rate too low to exercise the freeze";
}

TEST(ForecastNoise, FingerprintsSeparateActiveSpecs) {
  EXPECT_EQ(forecast_fingerprint(ForecastErrorSpec{}), 0u);
  ForecastErrorSpec a;
  a.sigma_dbm = 3.0;
  ForecastErrorSpec b = a;
  b.sigma_dbm = 4.0;
  ForecastErrorSpec c = a;
  c.salt = 9;
  EXPECT_NE(forecast_fingerprint(a), 0u);
  EXPECT_NE(forecast_fingerprint(a), forecast_fingerprint(b));
  EXPECT_NE(forecast_fingerprint(a), forecast_fingerprint(c));

  // Trace-cache keys: a perfect-forecast scenario shares its entry with the
  // prediction-free run; an active error spec gets its own.
  ScenarioConfig config = small_scenario();
  const TraceKey plain = make_trace_key(config);
  config.forecast = a;
  const TraceKey noisy = make_trace_key(config);
  EXPECT_FALSE(plain == noisy);
  EXPECT_NE(trace_key_fingerprint(plain), trace_key_fingerprint(noisy));
  config.forecast = ForecastErrorSpec{};
  EXPECT_TRUE(plain == make_trace_key(config));
}

TEST(ForecastNoise, RejectsInvalidSpecs) {
  ForecastErrorSpec bad;
  bad.sigma_dbm = -1.0;
  EXPECT_THROW(validate(bad), Error);
  ForecastErrorSpec stale;
  stale.staleness_slots = -2;
  EXPECT_THROW(validate(stale), Error);
}

TEST(ForecastNoise, OracleGapMonotoneNonImprovingInSigma) {
  // Single pronounced crest in an otherwise expensive channel: with a perfect
  // forecast the predictive EMA buys through the crest; noise blurs where the
  // crest is, so energy — and hence the gap to the fixed offline bound — can
  // only grow. Statistical but fully seeded: per-seed totals were strictly
  // monotone on all probed seeds; the assertion averages three seeds and
  // allows a 1% slack per step.
  const std::vector<double> sigmas = {0.0, 8.0, 30.0};
  std::vector<double> avg_total(sigmas.size(), 0.0);
  for (const std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    ScenarioConfig scenario = paper_scenario(4, seed);
    scenario.signal_kind = SignalKind::kTrace;
    scenario.trace_dbm.assign(400, -102.0);
    for (int slot = 150; slot < 200; ++slot) scenario.trace_dbm[checked_size(slot)] = -62.0;
    scenario.max_slots = 400;
    SchedulerOptions options;
    options.ema_predictive.horizon_slots = 200;
    for (std::size_t at = 0; at < sigmas.size(); ++at) {
      ScenarioConfig noisy = scenario;
      noisy.forecast.sigma_dbm = sigmas[at];
      const RunMetrics m =
          run_experiment({"p", "ema-predictive", noisy, options}, false);
      avg_total[at] += m.total_energy_mj() / 3.0;
    }
  }
  for (std::size_t at = 0; at + 1 < sigmas.size(); ++at) {
    EXPECT_LE(avg_total[at], avg_total[at + 1] * 1.01)
        << "sigma " << sigmas[at] << " -> " << sigmas[at + 1];
  }
}

}  // namespace
}  // namespace jstream
