#include "sim/metrics.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "test_helpers.hpp"

namespace jstream {
namespace {

using testing::TestUser;
using testing::make_context;

SlotOutcome make_outcome(std::size_t users) {
  SlotOutcome outcome;
  outcome.units.assign(users, 0);
  outcome.kb.assign(users, 0.0);
  outcome.trans_mj.assign(users, 0.0);
  outcome.tail_mj.assign(users, 0.0);
  outcome.rebuffer_s.assign(users, 0.0);
  outcome.need_kb.assign(users, 0.0);
  return outcome;
}

TEST(Metrics, AccumulatesPerUserTotals) {
  MetricsCollector collector(2);
  const SlotContext ctx = make_context({TestUser{}, TestUser{}});
  SlotOutcome outcome = make_outcome(2);
  outcome.units = {3, 0};
  outcome.kb = {300.0, 0.0};
  outcome.trans_mj = {150.0, 0.0};
  outcome.tail_mj = {0.0, 700.0};
  outcome.rebuffer_s = {0.0, 1.0};
  outcome.need_kb = {400.0, 400.0};
  collector.record_slot(ctx, outcome);
  collector.record_slot(ctx, outcome);
  const RunMetrics metrics = collector.finish();

  EXPECT_EQ(metrics.slots_run, 2);
  EXPECT_DOUBLE_EQ(metrics.per_user[0].trans_mj, 300.0);
  EXPECT_DOUBLE_EQ(metrics.per_user[1].tail_mj, 1400.0);
  EXPECT_DOUBLE_EQ(metrics.per_user[0].delivered_kb, 600.0);
  EXPECT_EQ(metrics.per_user[0].tx_slots, 2);
  EXPECT_EQ(metrics.per_user[1].tx_slots, 0);
  EXPECT_DOUBLE_EQ(metrics.per_user[1].rebuffer_s, 2.0);
  EXPECT_DOUBLE_EQ(metrics.total_energy_mj(), 1700.0);
  EXPECT_DOUBLE_EQ(metrics.total_trans_mj(), 300.0);
  EXPECT_DOUBLE_EQ(metrics.total_tail_mj(), 1400.0);
  EXPECT_DOUBLE_EQ(metrics.total_rebuffer_s(), 2.0);
}

TEST(Metrics, PerSlotSeriesAndFairness) {
  MetricsCollector collector(2);
  const SlotContext ctx = make_context({TestUser{}, TestUser{}});
  SlotOutcome outcome = make_outcome(2);
  outcome.kb = {400.0, 0.0};
  outcome.need_kb = {400.0, 400.0};  // shares 1 and 0 -> Jain = 0.5
  outcome.trans_mj = {100.0, 0.0};
  collector.record_slot(ctx, outcome);
  const RunMetrics metrics = collector.finish();
  ASSERT_EQ(metrics.slot_fairness.size(), 1u);
  EXPECT_NEAR(metrics.slot_fairness[0], 0.5, 1e-12);
  ASSERT_EQ(metrics.slot_energy_mj.size(), 1u);
  EXPECT_DOUBLE_EQ(metrics.slot_energy_mj[0], 100.0);
  EXPECT_EQ(metrics.rebuffer_samples_s.size(), 2u);
}

TEST(Metrics, FairnessSkipsSlotsWithoutNeed) {
  MetricsCollector collector(1);
  const SlotContext ctx = make_context({TestUser{}});
  SlotOutcome outcome = make_outcome(1);
  outcome.need_kb = {0.0};
  collector.record_slot(ctx, outcome);
  const RunMetrics metrics = collector.finish();
  EXPECT_TRUE(metrics.slot_fairness.empty());
  EXPECT_DOUBLE_EQ(metrics.mean_fairness(), 1.0);  // vacuous
}

TEST(Metrics, SessionSlotsStopAtPlaybackEnd) {
  MetricsCollector collector(1);
  std::vector<TestUser> playing{TestUser{}};
  std::vector<TestUser> done{TestUser{}};
  done[0].elapsed_play_s = done[0].total_play_s;
  SlotOutcome outcome = make_outcome(1);
  outcome.rebuffer_s = {1.0};
  collector.record_slot(make_context(playing), outcome);

  SlotContext done_ctx = make_context(done);
  done_ctx.users[0].playback_done = true;
  SlotOutcome quiet = make_outcome(1);
  collector.record_slot(done_ctx, quiet);
  const RunMetrics metrics = collector.finish();
  EXPECT_EQ(metrics.per_user[0].session_slots, 1);
  EXPECT_TRUE(metrics.per_user[0].playback_finished);
  EXPECT_DOUBLE_EQ(metrics.completion_rate(), 1.0);
  // Only the in-playback slot contributed a rebuffer sample.
  EXPECT_EQ(metrics.rebuffer_samples_s.size(), 1u);
}

TEST(Metrics, PerSlotAveragesNormalizeBySessionSlots) {
  MetricsCollector collector(1);
  const SlotContext ctx = make_context({TestUser{}});
  SlotOutcome outcome = make_outcome(1);
  outcome.units = {1};
  outcome.trans_mj = {200.0};
  outcome.rebuffer_s = {0.5};
  outcome.need_kb = {400.0};
  outcome.kb = {100.0};
  for (int i = 0; i < 4; ++i) collector.record_slot(ctx, outcome);
  const RunMetrics metrics = collector.finish();
  EXPECT_DOUBLE_EQ(metrics.avg_energy_per_user_slot_mj(), 200.0);
  EXPECT_DOUBLE_EQ(metrics.avg_rebuffer_per_user_slot_s(), 0.5);
  EXPECT_DOUBLE_EQ(metrics.avg_tail_per_user_slot_mj(), 0.0);
}

TEST(Metrics, SeriesCanBeDisabled) {
  MetricsCollector collector(1, /*keep_series=*/false);
  const SlotContext ctx = make_context({TestUser{}});
  SlotOutcome outcome = make_outcome(1);
  outcome.need_kb = {400.0};
  outcome.kb = {400.0};
  collector.record_slot(ctx, outcome);
  const RunMetrics metrics = collector.finish();
  EXPECT_TRUE(metrics.slot_fairness.empty());
  EXPECT_TRUE(metrics.slot_energy_mj.empty());
  EXPECT_TRUE(metrics.rebuffer_samples_s.empty());
  EXPECT_EQ(metrics.slots_run, 1);  // aggregates still collected
}

TEST(Metrics, RejectsSizeMismatch) {
  MetricsCollector collector(2);
  const SlotContext ctx = make_context({TestUser{}});
  EXPECT_THROW(collector.record_slot(ctx, make_outcome(1)), Error);
}

TEST(Metrics, AllDepartedSlotContributesNothing) {
  // Fault layer's worst case: every session aborted. The slot still records
  // (energy could in principle exist from tails of earlier slots) but no
  // session clock ticks, no stall samples accrue, and fairness has no sample.
  MetricsCollector collector(2);
  SlotContext ctx = make_context({TestUser{}, TestUser{}});
  for (auto& info : ctx.users) {
    info.departed = true;
    info.needs_data = false;
    info.alloc_cap_units = 0;
  }
  collector.record_slot(ctx, make_outcome(2));
  const RunMetrics metrics = collector.finish();
  EXPECT_EQ(metrics.slots_run, 1);
  EXPECT_EQ(metrics.per_user[0].session_slots, 0);
  EXPECT_EQ(metrics.per_user[1].session_slots, 0);
  EXPECT_TRUE(metrics.slot_fairness.empty());
  EXPECT_TRUE(metrics.rebuffer_samples_s.empty());
  EXPECT_DOUBLE_EQ(metrics.mean_fairness(), 1.0);  // vacuous, not NaN
  EXPECT_DOUBLE_EQ(metrics.avg_energy_per_user_slot_mj(), 0.0);
  EXPECT_DOUBLE_EQ(metrics.avg_rebuffer_per_user_slot_s(), 0.0);
  EXPECT_DOUBLE_EQ(metrics.completion_rate(), 0.0);  // aborted != finished
}

TEST(Metrics, AllOutagedSlotIsVacuouslyFair) {
  // Every user demands data but none is served (cell-wide deep fade): all
  // shares are zero, and the Jain index defines the all-zero slot as 1.0
  // rather than 0/0.
  MetricsCollector collector(2);
  const SlotContext ctx = make_context({TestUser{}, TestUser{}});
  SlotOutcome outcome = make_outcome(2);
  outcome.need_kb = {400.0, 400.0};
  collector.record_slot(ctx, outcome);
  const RunMetrics metrics = collector.finish();
  ASSERT_EQ(metrics.slot_fairness.size(), 1u);
  EXPECT_DOUBLE_EQ(metrics.slot_fairness[0], 1.0);
  EXPECT_DOUBLE_EQ(metrics.mean_fairness(), 1.0);
}

TEST(Metrics, DepartureFreezesSessionAccrual) {
  MetricsCollector collector(1);
  SlotOutcome active = make_outcome(1);
  active.rebuffer_s = {0.5};
  active.trans_mj = {10.0};
  collector.record_slot(make_context({TestUser{}}), active);

  SlotContext gone = make_context({TestUser{}});
  gone.users[0].departed = true;
  const SlotOutcome quiet = make_outcome(1);
  collector.record_slot(gone, quiet);
  collector.record_slot(gone, quiet);
  const RunMetrics metrics = collector.finish();
  EXPECT_EQ(metrics.slots_run, 3);
  EXPECT_EQ(metrics.per_user[0].session_slots, 1);  // clock froze at the abort
  EXPECT_DOUBLE_EQ(metrics.per_user[0].rebuffer_s, 0.5);
  EXPECT_EQ(metrics.rebuffer_samples_s.size(), 1u);
  EXPECT_FALSE(metrics.per_user[0].playback_finished);
  // Per-slot averages normalize by the frozen session-slot clock.
  EXPECT_DOUBLE_EQ(metrics.avg_energy_per_user_slot_mj(), 10.0);
  EXPECT_DOUBLE_EQ(metrics.avg_rebuffer_per_user_slot_s(), 0.5);
}

TEST(Metrics, DepartedUserDoesNotCountAsFinished) {
  // Even when playback_done flips in the same slot as the abort, departed
  // wins: the session did not complete.
  MetricsCollector collector(1);
  SlotContext ctx = make_context({TestUser{}});
  ctx.users[0].departed = true;
  ctx.users[0].playback_done = true;
  collector.record_slot(ctx, make_outcome(1));
  const RunMetrics metrics = collector.finish();
  EXPECT_FALSE(metrics.per_user[0].playback_finished);
  EXPECT_DOUBLE_EQ(metrics.completion_rate(), 0.0);
}

// Degenerate runs (zero users, zero slots, series disabled) must summarize
// without dividing by zero.
TEST(Metrics, EmptyRunSummarizesToZeros) {
  MetricsCollector collector(0, /*keep_series=*/false);
  const RunMetrics metrics = collector.finish();
  EXPECT_EQ(metrics.slots_run, 0);
  EXPECT_TRUE(metrics.per_user.empty());
  EXPECT_DOUBLE_EQ(metrics.total_energy_mj(), 0.0);
  EXPECT_DOUBLE_EQ(metrics.total_rebuffer_s(), 0.0);
  EXPECT_DOUBLE_EQ(metrics.avg_energy_per_user_slot_mj(), 0.0);
  EXPECT_DOUBLE_EQ(metrics.avg_tail_per_user_slot_mj(), 0.0);
  EXPECT_DOUBLE_EQ(metrics.avg_rebuffer_per_user_slot_s(), 0.0);
  EXPECT_DOUBLE_EQ(metrics.mean_fairness(), 1.0);
  EXPECT_DOUBLE_EQ(metrics.completion_rate(), 0.0);
}

TEST(Metrics, ZeroSlotRunSummarizesToZeros) {
  MetricsCollector collector(3);  // users exist but no slot is ever recorded
  const RunMetrics metrics = collector.finish();
  EXPECT_EQ(metrics.slots_run, 0);
  EXPECT_DOUBLE_EQ(metrics.avg_energy_per_user_slot_mj(), 0.0);
  EXPECT_DOUBLE_EQ(metrics.avg_rebuffer_per_user_slot_s(), 0.0);
  EXPECT_DOUBLE_EQ(metrics.mean_fairness(), 1.0);
  EXPECT_DOUBLE_EQ(metrics.completion_rate(), 0.0);
}

}  // namespace
}  // namespace jstream
