// Fault layer unit tests: schedule generation is a pure function of the
// scenario (per-family stream independence included), the window containers
// enforce their ordering contract, and the FaultInjector rewrites slot
// contexts exactly as documented — permanent deep-fade truth, capacity
// scaling, departure zeroing, and the stale-view/reconcile round trip.

#include "sim/fault.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/error.hpp"
#include "net/allocation.hpp"
#include "sim/scenario.hpp"
#include "test_helpers.hpp"

namespace jstream {
namespace {

using testing::TestUser;
using testing::make_context;

ScenarioConfig faulted_scenario(std::uint64_t seed = 11) {
  ScenarioConfig config = paper_scenario(/*users=*/4, seed);
  config.max_slots = 600;
  config.faults.outage_rate_per_kslot = 8.0;
  config.faults.staleness_rate_per_kslot = 12.0;
  config.faults.departure_fraction = 0.5;
  config.faults.capacity_rate_per_kslot = 4.0;
  return config;
}

std::vector<FaultInterval> to_vector(std::span<const FaultInterval> span) {
  return {span.begin(), span.end()};
}

void expect_same_schedule(const FaultSchedule& a, const FaultSchedule& b) {
  ASSERT_EQ(a.users(), b.users());
  EXPECT_EQ(a.horizon(), b.horizon());
  for (std::size_t user = 0; user < a.users(); ++user) {
    EXPECT_EQ(to_vector(a.outages(user)), to_vector(b.outages(user))) << user;
    EXPECT_EQ(to_vector(a.stale_windows(user)), to_vector(b.stale_windows(user)))
        << user;
    EXPECT_EQ(a.departure_slot(user), b.departure_slot(user)) << user;
  }
  EXPECT_EQ(to_vector(a.capacity_windows()), to_vector(b.capacity_windows()));
  for (const FaultInterval& window : a.capacity_windows()) {
    EXPECT_EQ(a.capacity_scale(window.begin), b.capacity_scale(window.begin));
  }
}

TEST(FaultConfig, DefaultIsInactive) {
  const FaultConfig config;
  EXPECT_FALSE(config.any());
  EXPECT_NO_THROW(validate(config));
  EXPECT_EQ(fault_fingerprint(config), 0u);
}

TEST(FaultConfig, EachFamilyActivates) {
  FaultConfig config;
  config.outage_rate_per_kslot = 1.0;
  EXPECT_TRUE(config.any());
  config = {};
  config.capacity_rate_per_kslot = 1.0;
  EXPECT_TRUE(config.any());
  config = {};
  config.departure_fraction = 0.1;
  EXPECT_TRUE(config.any());
  config = {};
  config.staleness_rate_per_kslot = 1.0;
  EXPECT_TRUE(config.any());
}

TEST(FaultConfig, ValidateRejectsBadRanges) {
  FaultConfig config;
  config.outage_rate_per_kslot = -1.0;
  EXPECT_THROW(validate(config), Error);

  config = {};
  config.outage_min_slots = 10;
  config.outage_max_slots = 5;
  EXPECT_THROW(validate(config), Error);

  config = {};
  config.staleness_min_slots = 0;
  EXPECT_THROW(validate(config), Error);

  config = {};
  config.capacity_scale = 1.5;
  EXPECT_THROW(validate(config), Error);

  config = {};
  config.departure_fraction = -0.1;
  EXPECT_THROW(validate(config), Error);

  config = {};
  config.departure_min_slot = -1;
  EXPECT_THROW(validate(config), Error);

  config = {};
  config.outage_dbm = std::numeric_limits<double>::infinity();
  EXPECT_THROW(validate(config), Error);
}

TEST(FaultFingerprint, ActiveConfigsAreNonZeroAndDistinct) {
  FaultConfig a;
  a.outage_rate_per_kslot = 2.0;
  FaultConfig b = a;
  EXPECT_NE(fault_fingerprint(a), 0u);
  EXPECT_EQ(fault_fingerprint(a), fault_fingerprint(b));

  b.outage_rate_per_kslot = 3.0;
  EXPECT_NE(fault_fingerprint(a), fault_fingerprint(b));

  b = a;
  b.salt = 1;
  EXPECT_NE(fault_fingerprint(a), fault_fingerprint(b));

  b = a;
  b.capacity_rate_per_kslot = 1.0;
  EXPECT_NE(fault_fingerprint(a), fault_fingerprint(b));
}

TEST(FaultScheduleGeneration, PureFunctionOfTheScenario) {
  const FaultSchedule a = make_fault_schedule(faulted_scenario());
  const FaultSchedule b = make_fault_schedule(faulted_scenario());
  EXPECT_TRUE(a.active());
  expect_same_schedule(a, b);
}

TEST(FaultScheduleGeneration, SeedAndSaltChangeTheDraws) {
  const FaultSchedule base = make_fault_schedule(faulted_scenario(11));
  const FaultSchedule reseeded = make_fault_schedule(faulted_scenario(12));
  ScenarioConfig salted = faulted_scenario(11);
  salted.faults.salt = 7;
  const FaultSchedule resalted = make_fault_schedule(salted);

  // With these rates a ~600-slot horizon draws dozens of windows; identical
  // draws under a different seed (or salt) would be astronomically unlikely.
  auto total_slots = [](const FaultSchedule& s) {
    return s.total_outage_slots() + s.total_stale_slots();
  };
  EXPECT_GT(total_slots(base), 0);
  EXPECT_NE(to_vector(base.outages(0)), to_vector(reseeded.outages(0)));
  EXPECT_NE(to_vector(base.outages(0)), to_vector(resalted.outages(0)));
}

TEST(FaultScheduleGeneration, ZeroIntensityIsInactive) {
  ScenarioConfig config = faulted_scenario();
  config.faults = FaultConfig{};
  const FaultSchedule schedule = make_fault_schedule(config);
  EXPECT_FALSE(schedule.active());
  EXPECT_EQ(schedule.total_outage_slots(), 0);
  EXPECT_EQ(schedule.total_stale_slots(), 0);
  EXPECT_EQ(schedule.departures(), 0u);
  EXPECT_TRUE(schedule.capacity_windows().empty());
}

TEST(FaultScheduleGeneration, FamiliesDrawFromIndependentStreams) {
  // Turning a second family on (or retuning it) must not move the first
  // family's windows: each family draws from its own split stream.
  ScenarioConfig outage_only = faulted_scenario();
  outage_only.faults = FaultConfig{};
  outage_only.faults.outage_rate_per_kslot = 8.0;
  ScenarioConfig all_on = faulted_scenario();

  const FaultSchedule lone = make_fault_schedule(outage_only);
  const FaultSchedule mixed = make_fault_schedule(all_on);
  for (std::size_t user = 0; user < lone.users(); ++user) {
    EXPECT_EQ(to_vector(lone.outages(user)), to_vector(mixed.outages(user))) << user;
  }

  ScenarioConfig retuned = all_on;
  retuned.faults.staleness_rate_per_kslot = 25.0;
  const FaultSchedule shifted = make_fault_schedule(retuned);
  for (std::size_t user = 0; user < mixed.users(); ++user) {
    EXPECT_EQ(to_vector(mixed.outages(user)), to_vector(shifted.outages(user)));
    EXPECT_EQ(mixed.departure_slot(user), shifted.departure_slot(user));
  }
  EXPECT_EQ(to_vector(mixed.capacity_windows()),
            to_vector(shifted.capacity_windows()));
}

TEST(FaultScheduleGeneration, WindowsAreSortedDisjointAndInHorizon) {
  const ScenarioConfig config = faulted_scenario();
  const FaultSchedule schedule = make_fault_schedule(config);
  auto check_windows = [&](std::span<const FaultInterval> windows) {
    std::int64_t prev_end = 0;
    for (const FaultInterval& w : windows) {
      EXPECT_GE(w.begin, prev_end);
      EXPECT_LT(w.begin, w.end);
      EXPECT_LE(w.end, config.max_slots);
      prev_end = w.end;
    }
  };
  for (std::size_t user = 0; user < schedule.users(); ++user) {
    check_windows(schedule.outages(user));
    check_windows(schedule.stale_windows(user));
    const std::int64_t departure = schedule.departure_slot(user);
    if (departure != FaultSchedule::kNeverDeparts) {
      EXPECT_GE(departure, 0);
      EXPECT_LT(departure, config.max_slots);
    }
  }
  check_windows(schedule.capacity_windows());
}

TEST(FaultSchedule, QueriesMatchHandBuiltWindows) {
  FaultSchedule schedule(/*users=*/2, /*horizon=*/20, /*outage_dbm=*/-112.0);
  EXPECT_FALSE(schedule.active());
  schedule.add_outage(0, {2, 5});
  schedule.add_outage(0, {8, 10});
  schedule.add_stale_window(1, {4, 7});
  schedule.add_capacity_window({6, 9}, 0.25);
  schedule.set_departure(1, 12);
  EXPECT_TRUE(schedule.active());

  EXPECT_FALSE(schedule.outaged(0, 1));
  EXPECT_TRUE(schedule.outaged(0, 2));
  EXPECT_TRUE(schedule.outaged(0, 4));
  EXPECT_FALSE(schedule.outaged(0, 5));  // half-open
  EXPECT_TRUE(schedule.outaged(0, 9));
  EXPECT_FALSE(schedule.outaged(1, 3));

  EXPECT_TRUE(schedule.stale(1, 4));
  EXPECT_FALSE(schedule.stale(1, 7));
  EXPECT_FALSE(schedule.stale(0, 4));

  EXPECT_DOUBLE_EQ(schedule.capacity_scale(5), 1.0);
  EXPECT_DOUBLE_EQ(schedule.capacity_scale(6), 0.25);
  EXPECT_DOUBLE_EQ(schedule.capacity_scale(8), 0.25);
  EXPECT_DOUBLE_EQ(schedule.capacity_scale(9), 1.0);

  EXPECT_FALSE(schedule.departed(1, 11));
  EXPECT_TRUE(schedule.departed(1, 12));
  EXPECT_EQ(schedule.departure_slot(0), FaultSchedule::kNeverDeparts);
  EXPECT_EQ(schedule.total_outage_slots(), 5);
  EXPECT_EQ(schedule.total_stale_slots(), 3);
  EXPECT_EQ(schedule.departures(), 1u);
}

TEST(FaultSchedule, MutatorsEnforceTheContract) {
  EXPECT_THROW(FaultSchedule(1, 0, -112.0), Error);
  FaultSchedule schedule(/*users=*/1, /*horizon=*/10, /*outage_dbm=*/-112.0);
  schedule.add_outage(0, {2, 5});
  EXPECT_THROW(schedule.add_outage(0, {4, 6}), Error);   // overlap
  EXPECT_THROW(schedule.add_outage(0, {0, 1}), Error);   // out of order
  EXPECT_THROW(schedule.add_outage(0, {5, 11}), Error);  // past horizon
  EXPECT_THROW(schedule.add_outage(0, {5, 5}), Error);   // empty
  EXPECT_THROW(schedule.add_outage(1, {5, 6}), Error);   // user range
  EXPECT_THROW(schedule.set_departure(0, 10), Error);    // past horizon
  EXPECT_THROW(schedule.add_capacity_window({0, 2}, 1.5), Error);
}

// ---------------------------------------------------------------------------
// FaultInjector: synthetic one-user contexts make each rewrite observable.

std::shared_ptr<const FaultSchedule> share(FaultSchedule schedule) {
  return std::make_shared<const FaultSchedule>(std::move(schedule));
}

TEST(FaultInjector, OutageRewritesTheLinkTruth) {
  FaultSchedule schedule(/*users=*/1, /*horizon=*/10, /*outage_dbm=*/-112.0);
  schedule.add_outage(0, {3, 6});
  FaultInjector injector(share(std::move(schedule)));

  SlotContext clean = make_context({TestUser{}}, 20000.0, SlotParams{}, /*slot=*/2);
  const UserSlotInfo before = clean.users[0];
  injector.degrade_context(clean);
  EXPECT_DOUBLE_EQ(clean.users[0].signal_dbm, before.signal_dbm);
  EXPECT_EQ(clean.users[0].alloc_cap_units, before.alloc_cap_units);

  SlotContext faded = make_context({TestUser{}}, 20000.0, SlotParams{}, /*slot=*/4);
  injector.degrade_context(faded);
  const UserSlotInfo& info = faded.users[0];
  EXPECT_DOUBLE_EQ(info.signal_dbm, -112.0);
  EXPECT_DOUBLE_EQ(info.throughput_kbps, faded.throughput->throughput_kbps(-112.0));
  EXPECT_DOUBLE_EQ(info.energy_per_kb, faded.power->energy_per_kb(-112.0));
  EXPECT_GT(info.throughput_kbps, 0.0);  // depth stays inside the fits
  EXPECT_EQ(info.link_units, faded.params.link_units(info.throughput_kbps));
  EXPECT_LT(info.alloc_cap_units, before.alloc_cap_units);
  EXPECT_GT(info.energy_per_kb, before.energy_per_kb);
}

TEST(FaultInjector, CapacityWindowScalesTheSlotBound) {
  FaultSchedule schedule(/*users=*/1, /*horizon=*/10, /*outage_dbm=*/-112.0);
  schedule.add_capacity_window({0, 4}, 0.5);
  FaultInjector injector(share(std::move(schedule)));

  SlotContext degraded = make_context({TestUser{}}, 20000.0, SlotParams{}, 1);
  const std::int64_t full = degraded.capacity_units;
  injector.degrade_context(degraded);
  EXPECT_EQ(degraded.capacity_units, full / 2);

  SlotContext restored = make_context({TestUser{}}, 20000.0, SlotParams{}, 6);
  injector.degrade_context(restored);
  EXPECT_EQ(restored.capacity_units, full);
}

TEST(FaultInjector, DepartureZeroesTheUserForGood) {
  // Departures ride the shared session path: the abort slot is stamped on the
  // endpoint (as the Simulator does from the schedule), the collector derives
  // the departed flag and zeroes demand, and the injector leaves the flag
  // alone while doing its own bookkeeping.
  FaultSchedule schedule(/*users=*/2, /*horizon=*/10, /*outage_dbm=*/-112.0);
  schedule.set_departure(0, 5);
  FaultInjector injector(share(std::move(schedule)));

  std::vector<UserEndpoint> endpoints = testing::make_endpoints({-80.0, -80.0});
  endpoints[0].depart_at(injector.schedule().departure_slot(0));
  const InfoCollector collector = testing::make_collector();
  const BaseStation bs(20000.0);

  SlotContext before = collector.collect(4, endpoints, bs);
  injector.degrade_context(before);
  EXPECT_FALSE(before.users[0].departed);
  EXPECT_TRUE(before.users[0].needs_data);

  for (std::int64_t slot = 5; slot < 10; ++slot) {
    SlotContext after = collector.collect(slot, endpoints, bs);
    injector.degrade_context(after);
    EXPECT_TRUE(after.users[0].departed) << slot;
    EXPECT_FALSE(after.users[0].needs_data) << slot;
    EXPECT_EQ(after.users[0].alloc_cap_units, 0) << slot;
    // The neighbour is untouched.
    EXPECT_FALSE(after.users[1].departed) << slot;
    EXPECT_GT(after.users[1].alloc_cap_units, 0) << slot;
  }
}

TEST(FaultInjector, StaleWindowServesTheLastFreshReportThenReconciles) {
  FaultSchedule schedule(/*users=*/1, /*horizon=*/10, /*outage_dbm=*/-112.0);
  schedule.add_stale_window(0, {1, 3});
  FaultInjector injector(share(std::move(schedule)));

  // Slot 0: fresh report at a strong signal.
  TestUser strong;
  strong.signal_dbm = -65.0;
  SlotContext fresh = make_context({strong}, 20000.0, SlotParams{}, 0);
  injector.degrade_context(fresh);
  EXPECT_DOUBLE_EQ(fresh.users[0].signal_dbm, -65.0);
  const std::int64_t strong_cap = fresh.users[0].alloc_cap_units;

  // Slot 1: the channel truly collapsed, but the scheduler is served the
  // stale strong view.
  TestUser weak;
  weak.signal_dbm = -105.0;
  SlotContext stale = make_context({weak}, 20000.0, SlotParams{}, 1);
  const UserSlotInfo truth = stale.users[0];
  injector.degrade_context(stale);
  EXPECT_DOUBLE_EQ(stale.users[0].signal_dbm, -65.0);
  EXPECT_DOUBLE_EQ(stale.users[0].throughput_kbps,
                   stale.throughput->throughput_kbps(-65.0));
  EXPECT_EQ(stale.users[0].alloc_cap_units, strong_cap);
  EXPECT_GT(strong_cap, truth.alloc_cap_units);  // the view is optimistic

  // The scheduler grants against the optimistic view; reconcile restores the
  // truth and clips the grant to the true link cap (Eq. 2 only shrinks).
  Allocation alloc = Allocation::zeros(1);
  alloc.units[0] = strong_cap;
  injector.reconcile_allocation(stale, alloc);
  EXPECT_DOUBLE_EQ(stale.users[0].signal_dbm, truth.signal_dbm);
  EXPECT_DOUBLE_EQ(stale.users[0].throughput_kbps, truth.throughput_kbps);
  EXPECT_DOUBLE_EQ(stale.users[0].energy_per_kb, truth.energy_per_kb);
  EXPECT_EQ(stale.users[0].link_units, truth.link_units);
  EXPECT_EQ(stale.users[0].alloc_cap_units, truth.alloc_cap_units);
  EXPECT_EQ(alloc.units[0], truth.alloc_cap_units);
}

TEST(FaultInjector, StaleWindowBeforeAnyFreshReportIsServedTheTruth) {
  FaultSchedule schedule(/*users=*/1, /*horizon=*/10, /*outage_dbm=*/-112.0);
  schedule.add_stale_window(0, {0, 2});
  FaultInjector injector(share(std::move(schedule)));

  SlotContext first = make_context({TestUser{}}, 20000.0, SlotParams{}, 0);
  const UserSlotInfo truth = first.users[0];
  injector.degrade_context(first);
  // No fresh report exists yet, so there is nothing stale to serve.
  EXPECT_DOUBLE_EQ(first.users[0].signal_dbm, truth.signal_dbm);
  EXPECT_EQ(first.users[0].alloc_cap_units, truth.alloc_cap_units);

  Allocation alloc = Allocation::zeros(1);
  alloc.units[0] = truth.alloc_cap_units;
  injector.reconcile_allocation(first, alloc);
  EXPECT_EQ(alloc.units[0], truth.alloc_cap_units);  // nothing to clip
}

TEST(FaultInjector, PessimisticStaleViewIsNotInflated) {
  // Stale view weaker than the truth: the grant already fits the true link,
  // so reconcile restores the truth but leaves the grant alone.
  FaultSchedule schedule(/*users=*/1, /*horizon=*/10, /*outage_dbm=*/-112.0);
  schedule.add_stale_window(0, {1, 2});
  FaultInjector injector(share(std::move(schedule)));

  TestUser weak;
  weak.signal_dbm = -105.0;
  SlotContext fresh = make_context({weak}, 20000.0, SlotParams{}, 0);
  injector.degrade_context(fresh);
  const std::int64_t weak_cap = fresh.users[0].alloc_cap_units;

  TestUser strong;
  strong.signal_dbm = -65.0;
  SlotContext stale = make_context({strong}, 20000.0, SlotParams{}, 1);
  const std::int64_t true_cap = stale.users[0].alloc_cap_units;
  injector.degrade_context(stale);
  EXPECT_EQ(stale.users[0].alloc_cap_units, weak_cap);

  Allocation alloc = Allocation::zeros(1);
  alloc.units[0] = weak_cap;
  injector.reconcile_allocation(stale, alloc);
  EXPECT_EQ(stale.users[0].alloc_cap_units, true_cap);
  EXPECT_EQ(alloc.units[0], weak_cap);  // under the true cap: kept
}

TEST(FaultInjector, RejectsPopulationMismatch) {
  FaultSchedule schedule(/*users=*/2, /*horizon=*/10, /*outage_dbm=*/-112.0);
  schedule.set_departure(0, 1);
  FaultInjector injector(share(std::move(schedule)));
  SlotContext ctx = make_context({TestUser{}});
  EXPECT_THROW(injector.degrade_context(ctx), Error);
  Allocation alloc = Allocation::zeros(1);
  EXPECT_THROW(injector.reconcile_allocation(ctx, alloc), Error);
}

}  // namespace
}  // namespace jstream
