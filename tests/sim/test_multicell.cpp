#include "sim/multicell.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "sim/simulator.hpp"

namespace jstream {
namespace {

ScenarioConfig small_cell(std::uint64_t seed = 5) {
  ScenarioConfig config = paper_scenario(4, seed);
  config.video_min_mb = 5.0;
  config.video_max_mb = 10.0;
  config.max_slots = 1500;
  return config;
}

TEST(MultiCell, UniformDeploymentVariesSeeds) {
  const MultiCellConfig config = MultiCellConfig::uniform(small_cell(100), 3);
  ASSERT_EQ(config.cells.size(), 3u);
  EXPECT_EQ(config.cells[0].seed, 100u);
  EXPECT_EQ(config.cells[1].seed, 101u);
  EXPECT_EQ(config.cells[2].seed, 102u);
  EXPECT_THROW((void)MultiCellConfig::uniform(small_cell(), 0), Error);
}

TEST(MultiCell, RunsEveryCellToCompletion) {
  const MultiCellConfig config = MultiCellConfig::uniform(small_cell(), 3);
  const MultiCellResult result = simulate_multicell(config, "default", {}, 2);
  ASSERT_EQ(result.per_cell.size(), 3u);
  EXPECT_EQ(result.total_users(), 12u);
  for (const auto& cell : result.per_cell) {
    EXPECT_DOUBLE_EQ(cell.completion_rate(), 1.0);
  }
  EXPECT_GT(result.total_energy_mj(), 0.0);
}

TEST(MultiCell, AggregatesMatchSingleCellRuns) {
  const MultiCellConfig config = MultiCellConfig::uniform(small_cell(), 2);
  const MultiCellResult result = simulate_multicell(config, "throttling");
  double expected_energy = 0.0;
  double expected_rebuffer = 0.0;
  for (const auto& cell : config.cells) {
    const RunMetrics standalone =
        simulate(cell, make_scheduler("throttling"), false);
    expected_energy += standalone.total_energy_mj();
    expected_rebuffer += standalone.total_rebuffer_s();
  }
  EXPECT_DOUBLE_EQ(result.total_energy_mj(), expected_energy);
  EXPECT_DOUBLE_EQ(result.total_rebuffer_s(), expected_rebuffer);
}

TEST(MultiCell, WeightedAveragesAreBetweenCellExtremes) {
  MultiCellConfig config = MultiCellConfig::uniform(small_cell(), 2);
  config.cells[1].users = 8;  // heterogeneous cells
  const MultiCellResult result = simulate_multicell(config, "default");
  const double lo = std::min(result.per_cell[0].avg_energy_per_user_slot_mj(),
                             result.per_cell[1].avg_energy_per_user_slot_mj());
  const double hi = std::max(result.per_cell[0].avg_energy_per_user_slot_mj(),
                             result.per_cell[1].avg_energy_per_user_slot_mj());
  EXPECT_GE(result.avg_energy_per_user_slot_mj(), lo);
  EXPECT_LE(result.avg_energy_per_user_slot_mj(), hi);
}

TEST(MultiCell, SchedulerStateDoesNotLeakBetweenCells) {
  // Running [A] and [A, A] must give cell A identical results: each cell
  // gets a fresh scheduler instance.
  MultiCellConfig one;
  one.cells = {small_cell(7)};
  MultiCellConfig two;
  two.cells = {small_cell(7), small_cell(8)};
  const MultiCellResult a = simulate_multicell(one, "ema-fast");
  const MultiCellResult b = simulate_multicell(two, "ema-fast");
  EXPECT_DOUBLE_EQ(a.per_cell[0].total_energy_mj(), b.per_cell[0].total_energy_mj());
  EXPECT_DOUBLE_EQ(a.per_cell[0].total_rebuffer_s(), b.per_cell[0].total_rebuffer_s());
}

TEST(MultiCell, RejectsEmptyDeployment) {
  EXPECT_THROW((void)simulate_multicell(MultiCellConfig{}, "default"), Error);
}

}  // namespace
}  // namespace jstream
