#include "sim/replication.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/stats.hpp"
#include "common/units.hpp"

namespace jstream {
namespace {

ExperimentSpec small_spec(std::uint64_t seed = 40) {
  ScenarioConfig scenario = paper_scenario(4, seed);
  scenario.video_min_mb = 5.0;
  scenario.video_max_mb = 10.0;
  scenario.max_slots = 1500;
  return {"default", "default", scenario, {}};
}

TEST(Replication, RunsOnePerSeed) {
  const ReplicationResult result = replicate_experiment(small_spec(), 5, 2);
  ASSERT_EQ(result.runs.size(), 5u);
  EXPECT_EQ(result.pe_mj.summary.count, 5u);
  EXPECT_GT(result.pe_mj.summary.mean, 0.0);
}

TEST(Replication, SeedsActuallyDiffer) {
  const ReplicationResult result = replicate_experiment(small_spec(), 4);
  // Different seeds -> different workloads -> nonzero spread.
  EXPECT_GT(result.total_energy_mj.summary.stddev, 0.0);
}

TEST(Replication, MatchesIndividualRuns) {
  const ExperimentSpec spec = small_spec(77);
  const ReplicationResult result = replicate_experiment(spec, 3);
  for (std::size_t rep = 0; rep < 3; ++rep) {
    ExperimentSpec single = spec;
    single.scenario.seed = spec.scenario.seed + rep;
    const RunMetrics standalone = run_experiment(single, true);
    EXPECT_DOUBLE_EQ(result.runs[rep].total_energy_mj(),
                     standalone.total_energy_mj());
  }
}

TEST(Replication, CiShrinksWithMoreReps) {
  // Same generating process, more samples -> smaller CI half-width (up to
  // sampling noise; compare 3 vs 12 which is a robust gap).
  const ReplicationResult few = replicate_experiment(small_spec(), 3);
  const ReplicationResult many = replicate_experiment(small_spec(), 12);
  if (few.pe_mj.summary.stddev > 0.0) {
    EXPECT_LT(many.pe_mj.ci95_halfwidth(),
              few.pe_mj.ci95_halfwidth() * 2.0);
  }
  EXPECT_DOUBLE_EQ(replicate_experiment(small_spec(), 1).pe_mj.ci95_halfwidth(), 0.0);
}

TEST(Replication, RejectsZeroReps) {
  EXPECT_THROW((void)replicate_experiment(small_spec(), 0), Error);
}

TEST(Replication, Ci95UsesStudentTQuantile) {
  // With n replications the half-width must be t_{0.975, n-1} * s / sqrt(n),
  // not the normal 1.96 (anti-conservative for the small n used in figures).
  const std::size_t n = 5;
  const ReplicationResult result = replicate_experiment(small_spec(), n);
  const Summary& s = result.pe_mj.summary;
  ASSERT_EQ(s.count, n);
  const double expected =
      student_t_975(n - 1) * s.stddev / std::sqrt(as_double(n));
  EXPECT_DOUBLE_EQ(result.pe_mj.ci95_halfwidth(), expected);
  EXPECT_GT(student_t_975(n - 1), 1.96);  // wider than the old fixed-z interval
}

}  // namespace
}  // namespace jstream
