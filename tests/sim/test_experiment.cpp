#include "sim/experiment.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace jstream {
namespace {

ScenarioConfig small_scenario(std::size_t users = 6, std::uint64_t seed = 11) {
  ScenarioConfig config = paper_scenario(users, seed);
  config.video_min_mb = 10.0;
  config.video_max_mb = 20.0;
  config.max_slots = 2000;
  return config;
}

TEST(Experiment, RunsNamedScheduler) {
  ExperimentSpec spec{"test", "throttling", small_scenario(), {}};
  const RunMetrics metrics = run_experiment(spec);
  EXPECT_GT(metrics.slots_run, 0);
  EXPECT_DOUBLE_EQ(metrics.completion_rate(), 1.0);
}

TEST(Experiment, DefaultReferenceIsPopulated) {
  const DefaultReference reference = run_default_reference(small_scenario());
  EXPECT_GT(reference.energy_per_user_slot_mj, 0.0);
  EXPECT_GT(reference.total_energy_mj, 0.0);
  EXPECT_GE(reference.rebuffer_per_user_slot_s, 0.0);
  // Serving-slot energy must sit in Eq. 12's sensitive band: between the
  // full-rate slot cost at the best and worst signal (846..1505 mJ).
  EXPECT_GT(reference.trans_per_tx_slot_mj, 500.0);
  EXPECT_LT(reference.trans_per_tx_slot_mj, 1600.0);
}

TEST(Experiment, RtmaAlphaScalesTheBudget) {
  const DefaultReference reference = run_default_reference(small_scenario());
  const SchedulerOptions at_1 = rtma_options_for_alpha(1.0, reference);
  const SchedulerOptions at_08 = rtma_options_for_alpha(0.8, reference);
  EXPECT_DOUBLE_EQ(at_1.rtma.energy_budget_mj, reference.trans_per_tx_slot_mj);
  EXPECT_NEAR(at_08.rtma.energy_budget_mj, 0.8 * reference.trans_per_tx_slot_mj, 1e-9);
  EXPECT_THROW((void)rtma_options_for_alpha(0.0, reference), Error);
}

TEST(Experiment, CalibratedVRespectsTheBound) {
  const ScenarioConfig scenario = small_scenario(8);
  // Short sessions carry an irreducible cold-start stall, so anchor the bound
  // just above the measured floor (the rebuffering at a vanishing V) to make
  // it reachable but binding.
  SchedulerOptions probe;
  probe.ema.v_weight = 1e-4;
  const double floor =
      run_experiment({"probe", "ema-fast", scenario, probe}, false)
          .avg_rebuffer_per_user_slot_s();
  const double omega = floor * 1.3;
  const double v = calibrate_v_for_rebuffer(scenario, omega, 1e-4, 2.0, 8);
  EXPECT_GT(v, 1e-4);  // calibration found headroom above the probe V
  SchedulerOptions options;
  options.ema.v_weight = v;
  const RunMetrics metrics =
      run_experiment({"ema", "ema-fast", scenario, options}, false);
  // The calibration ran with the same fast solver, so the returned V was
  // probed feasible; the deterministic rerun must agree.
  EXPECT_LE(metrics.avg_rebuffer_per_user_slot_s(), omega + 1e-9);
}

TEST(Experiment, CalibrationIsMonotoneInOmega) {
  const ScenarioConfig scenario = small_scenario(8);
  const double v_tight = calibrate_v_for_rebuffer(scenario, 0.002, 1e-4, 2.0, 6);
  const double v_loose = calibrate_v_for_rebuffer(scenario, 0.08, 1e-4, 2.0, 6);
  EXPECT_LE(v_tight, v_loose + 1e-9);
}

TEST(Experiment, CalibrationRejectsBadArguments) {
  const ScenarioConfig scenario = small_scenario();
  EXPECT_THROW((void)calibrate_v_for_rebuffer(scenario, -1.0), Error);
  EXPECT_THROW((void)calibrate_v_for_rebuffer(scenario, 0.1, 1.0, 0.5), Error);
  EXPECT_THROW((void)calibrate_v_for_rebuffer(scenario, 0.1, 1e-3, 1.0, 0), Error);
}

}  // namespace
}  // namespace jstream
