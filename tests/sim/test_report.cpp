#include "sim/report.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "baselines/factory.hpp"
#include "common/csv.hpp"
#include "sim/simulator.hpp"

namespace jstream {
namespace {

RunMetrics sample_run() {
  ScenarioConfig config = paper_scenario(3, 5);
  config.video_min_mb = 5.0;
  config.video_max_mb = 8.0;
  config.max_slots = 1000;
  return simulate(config, make_scheduler("default"));
}

TEST(Report, SummaryMentionsKeyNumbers) {
  const RunMetrics metrics = sample_run();
  const std::string summary = summarize_run("demo", metrics);
  EXPECT_NE(summary.find("demo"), std::string::npos);
  EXPECT_NE(summary.find("PE"), std::string::npos);
  EXPECT_NE(summary.find("PC"), std::string::npos);
  EXPECT_NE(summary.find("100.0% sessions complete"), std::string::npos);
}

TEST(Report, FullReportHasOneRowPerUser) {
  const RunMetrics metrics = sample_run();
  const std::string report = render_report("demo", metrics);
  // Per-user table header plus the "done" column for every user.
  EXPECT_NE(report.find("per-user totals"), std::string::npos);
  std::size_t yes_count = 0;
  for (std::size_t pos = report.find("yes"); pos != std::string::npos;
       pos = report.find("yes", pos + 1)) {
    ++yes_count;
  }
  EXPECT_GE(yes_count, metrics.per_user.size());
}

TEST(Report, CsvExportWritesBothFiles) {
  const RunMetrics metrics = sample_run();
  const std::string dir =
      (std::filesystem::temp_directory_path() / "jstream_report_test").string();
  export_run_csv(dir, "demo", metrics);
  std::ifstream users(dir + "/demo_users.csv");
  std::ifstream slots(dir + "/demo_slots.csv");
  ASSERT_TRUE(users.good());
  ASSERT_TRUE(slots.good());
  std::string line;
  std::size_t user_rows = 0;
  while (std::getline(users, line)) ++user_rows;
  EXPECT_EQ(user_rows, metrics.per_user.size() + 1);  // header + users
  std::size_t slot_rows = 0;
  while (std::getline(slots, line)) ++slot_rows;
  EXPECT_EQ(slot_rows, metrics.slot_energy_mj.size() + 1);
  std::filesystem::remove_all(dir);
}

TEST(Report, CsvExportSkipsSeriesWhenAbsent) {
  ScenarioConfig config = paper_scenario(2, 5);
  config.video_min_mb = 5.0;
  config.video_max_mb = 6.0;
  config.max_slots = 500;
  const RunMetrics metrics =
      simulate(config, make_scheduler("default"), /*keep_series=*/false);
  const std::string dir =
      (std::filesystem::temp_directory_path() / "jstream_report_test2").string();
  export_run_csv(dir, "noseries", metrics);
  EXPECT_TRUE(std::filesystem::exists(dir + "/noseries_users.csv"));
  EXPECT_FALSE(std::filesystem::exists(dir + "/noseries_slots.csv"));
  std::filesystem::remove_all(dir);
}

// Regression: an empty run (no users, no slots, no series) must summarize,
// render, and export without dividing by zero or crashing.
TEST(Report, EmptyRunSummarizesAndExports) {
  const RunMetrics metrics;  // zero users, zero slots, empty series
  const std::string summary = summarize_run("empty", metrics);
  EXPECT_NE(summary.find("empty"), std::string::npos);
  EXPECT_NE(summary.find("0 slots"), std::string::npos);
  const std::string report = render_report("empty", metrics);
  EXPECT_NE(report.find("per-user totals"), std::string::npos);

  const std::string dir =
      (std::filesystem::temp_directory_path() / "jstream_report_empty").string();
  export_run_csv(dir, "empty", metrics);
  const CsvTable users = read_csv(dir + "/empty_users.csv");
  EXPECT_TRUE(users.rows.empty());
  EXPECT_EQ(users.header.front(), "user");
  EXPECT_FALSE(std::filesystem::exists(dir + "/empty_slots.csv"));
  std::filesystem::remove_all(dir);
}

// Round-trip: per-user totals written by export_run_csv survive the
// common/csv reader (within the writer's 3-decimal formatting).
TEST(Report, CsvRoundTripPreservesUserTotals) {
  const RunMetrics metrics = sample_run();
  const std::string dir =
      (std::filesystem::temp_directory_path() / "jstream_report_roundtrip").string();
  export_run_csv(dir, "rt", metrics);
  const CsvTable users = read_csv(dir + "/rt_users.csv");
  ASSERT_EQ(users.rows.size(), metrics.per_user.size());

  const std::size_t delivered = users.column("delivered_kb");
  const std::size_t trans = users.column("trans_mj");
  const std::size_t tail = users.column("tail_mj");
  const std::size_t rebuffer = users.column("rebuffer_s");
  const std::size_t tx_slots = users.column("tx_slots");
  const std::size_t session = users.column("session_slots");
  const std::size_t done = users.column("playback_finished");
  for (std::size_t i = 0; i < users.rows.size(); ++i) {
    const UserTotals& expected = metrics.per_user[i];
    const auto& row = users.rows[i];
    EXPECT_EQ(std::stoul(row[users.column("user")]), i);
    EXPECT_NEAR(std::stod(row[delivered]), expected.delivered_kb, 5e-4);
    EXPECT_NEAR(std::stod(row[trans]), expected.trans_mj, 5e-4);
    EXPECT_NEAR(std::stod(row[tail]), expected.tail_mj, 5e-4);
    EXPECT_NEAR(std::stod(row[rebuffer]), expected.rebuffer_s, 5e-4);
    EXPECT_EQ(std::stoll(row[tx_slots]), expected.tx_slots);
    EXPECT_EQ(std::stoll(row[session]), expected.session_slots);
    EXPECT_EQ(row[done] == "1", expected.playback_finished);
  }

  // The slot series round-trips as one row per recorded slot.
  const CsvTable slots = read_csv(dir + "/rt_slots.csv");
  ASSERT_EQ(slots.rows.size(), metrics.slot_energy_mj.size());
  const std::size_t energy = slots.column("energy_mj");
  for (std::size_t n = 0; n < slots.rows.size(); ++n) {
    EXPECT_NEAR(std::stod(slots.rows[n][energy]), metrics.slot_energy_mj[n], 5e-4);
  }
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace jstream
