#include "sim/report.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "baselines/factory.hpp"
#include "sim/simulator.hpp"

namespace jstream {
namespace {

RunMetrics sample_run() {
  ScenarioConfig config = paper_scenario(3, 5);
  config.video_min_mb = 5.0;
  config.video_max_mb = 8.0;
  config.max_slots = 1000;
  return simulate(config, make_scheduler("default"));
}

TEST(Report, SummaryMentionsKeyNumbers) {
  const RunMetrics metrics = sample_run();
  const std::string summary = summarize_run("demo", metrics);
  EXPECT_NE(summary.find("demo"), std::string::npos);
  EXPECT_NE(summary.find("PE"), std::string::npos);
  EXPECT_NE(summary.find("PC"), std::string::npos);
  EXPECT_NE(summary.find("100.0% sessions complete"), std::string::npos);
}

TEST(Report, FullReportHasOneRowPerUser) {
  const RunMetrics metrics = sample_run();
  const std::string report = render_report("demo", metrics);
  // Per-user table header plus the "done" column for every user.
  EXPECT_NE(report.find("per-user totals"), std::string::npos);
  std::size_t yes_count = 0;
  for (std::size_t pos = report.find("yes"); pos != std::string::npos;
       pos = report.find("yes", pos + 1)) {
    ++yes_count;
  }
  EXPECT_GE(yes_count, metrics.per_user.size());
}

TEST(Report, CsvExportWritesBothFiles) {
  const RunMetrics metrics = sample_run();
  const std::string dir =
      (std::filesystem::temp_directory_path() / "jstream_report_test").string();
  export_run_csv(dir, "demo", metrics);
  std::ifstream users(dir + "/demo_users.csv");
  std::ifstream slots(dir + "/demo_slots.csv");
  ASSERT_TRUE(users.good());
  ASSERT_TRUE(slots.good());
  std::string line;
  std::size_t user_rows = 0;
  while (std::getline(users, line)) ++user_rows;
  EXPECT_EQ(user_rows, metrics.per_user.size() + 1);  // header + users
  std::size_t slot_rows = 0;
  while (std::getline(slots, line)) ++slot_rows;
  EXPECT_EQ(slot_rows, metrics.slot_energy_mj.size() + 1);
  std::filesystem::remove_all(dir);
}

TEST(Report, CsvExportSkipsSeriesWhenAbsent) {
  ScenarioConfig config = paper_scenario(2, 5);
  config.video_min_mb = 5.0;
  config.video_max_mb = 6.0;
  config.max_slots = 500;
  const RunMetrics metrics =
      simulate(config, make_scheduler("default"), /*keep_series=*/false);
  const std::string dir =
      (std::filesystem::temp_directory_path() / "jstream_report_test2").string();
  export_run_csv(dir, "noseries", metrics);
  EXPECT_TRUE(std::filesystem::exists(dir + "/noseries_users.csv"));
  EXPECT_FALSE(std::filesystem::exists(dir + "/noseries_slots.csv"));
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace jstream
