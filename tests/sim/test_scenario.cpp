#include "sim/scenario.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/units.hpp"

namespace jstream {
namespace {

TEST(Scenario, PaperDefaultsMatchSectionVI) {
  const ScenarioConfig config = paper_scenario();
  EXPECT_EQ(config.users, 40u);
  EXPECT_EQ(config.max_slots, 10000);
  EXPECT_DOUBLE_EQ(config.slot.tau_s, 1.0);
  EXPECT_DOUBLE_EQ(config.capacity_kbps, 20000.0);
  EXPECT_DOUBLE_EQ(config.video_min_mb, 250.0);
  EXPECT_DOUBLE_EQ(config.video_max_mb, 500.0);
  EXPECT_DOUBLE_EQ(config.bitrate_min_kbps, 300.0);
  EXPECT_DOUBLE_EQ(config.bitrate_max_kbps, 600.0);
  EXPECT_DOUBLE_EQ(config.signal.min_dbm, -110.0);
  EXPECT_DOUBLE_EQ(config.signal.max_dbm, -50.0);
  EXPECT_EQ(config.radio.name, "3g");
  EXPECT_NO_THROW(validate(config));
}

TEST(Scenario, DataAmountVariantCentersTheRange) {
  const ScenarioConfig config = paper_scenario_with_data_amount(30, 350.0);
  EXPECT_DOUBLE_EQ(config.video_min_mb, 250.0);
  EXPECT_DOUBLE_EQ(config.video_max_mb, 450.0);
  EXPECT_THROW((void)paper_scenario_with_data_amount(30, 50.0), Error);
}

TEST(Scenario, BuildEndpointsHonorsRanges) {
  const ScenarioConfig config = paper_scenario(25, 9);
  const auto endpoints = build_endpoints(config);
  ASSERT_EQ(endpoints.size(), 25u);
  for (const auto& endpoint : endpoints) {
    EXPECT_GE(endpoint.session.size_kb(), mb_to_kb(250.0));
    EXPECT_LE(endpoint.session.size_kb(), mb_to_kb(500.0));
    EXPECT_GE(endpoint.session.bitrate_kbps(0), 300.0);
    EXPECT_LE(endpoint.session.bitrate_kbps(0), 600.0);
    EXPECT_DOUBLE_EQ(endpoint.delivered_kb, 0.0);
    EXPECT_TRUE(endpoint.active());
  }
}

TEST(Scenario, EndpointsAreDeterministicPerSeed) {
  const ScenarioConfig config = paper_scenario(10, 77);
  auto a = build_endpoints(config);
  auto b = build_endpoints(config);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].session.size_kb(), b[i].session.size_kb());
    EXPECT_DOUBLE_EQ(a[i].session.bitrate_kbps(0), b[i].session.bitrate_kbps(0));
    EXPECT_DOUBLE_EQ(a[i].signal->signal_dbm(5), b[i].signal->signal_dbm(5));
  }
}

TEST(Scenario, DifferentSeedsGiveDifferentPopulations) {
  auto a = build_endpoints(paper_scenario(10, 1));
  auto b = build_endpoints(paper_scenario(10, 2));
  int identical = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].session.size_kb() == b[i].session.size_kb()) ++identical;
  }
  EXPECT_LT(identical, 3);
}

TEST(Scenario, UsersHaveDistinctSignalPhases) {
  auto endpoints = build_endpoints(paper_scenario(10, 5));
  // With per-user random phases, signals at the same slot should differ.
  int distinct = 0;
  const double first = endpoints[0].signal->signal_dbm(0);
  for (std::size_t i = 1; i < endpoints.size(); ++i) {
    if (std::abs(endpoints[i].signal->signal_dbm(0) - first) > 0.5) ++distinct;
  }
  EXPECT_GT(distinct, 5);
}

TEST(Scenario, ValidateCatchesBrokenConfigs) {
  ScenarioConfig config = paper_scenario();
  config.users = 0;
  EXPECT_THROW(validate(config), Error);
  config = paper_scenario();
  config.video_min_mb = 600.0;  // min > max
  EXPECT_THROW(validate(config), Error);
  config = paper_scenario();
  config.capacity_kbps = 0.0;
  EXPECT_THROW(validate(config), Error);
  config = paper_scenario();
  config.link.power = nullptr;
  EXPECT_THROW(validate(config), Error);
}

}  // namespace
}  // namespace jstream
