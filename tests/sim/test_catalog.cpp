#include "sim/catalog.hpp"

#include <gtest/gtest.h>

#include "baselines/factory.hpp"
#include "common/error.hpp"
#include "sim/simulator.hpp"

namespace jstream {
namespace {

TEST(Catalog, EveryPresetBuildsAndValidates) {
  for (const ScenarioPreset& preset : scenario_catalog()) {
    const ScenarioConfig config = make_catalog_scenario(preset.name, 5, 3);
    EXPECT_NO_THROW(validate(config)) << preset.name;
    EXPECT_EQ(config.users, 5u) << preset.name;
    EXPECT_EQ(config.seed, 3u) << preset.name;
    EXPECT_FALSE(preset.description.empty());
  }
}

TEST(Catalog, PresetsDifferFromPaperWhereExpected) {
  EXPECT_EQ(make_catalog_scenario("lte").radio.kind, RrcKind::kTwoStateLte);
  EXPECT_TRUE(make_catalog_scenario("vbr").vbr);
  EXPECT_GT(make_catalog_scenario("churn").arrival_spread_slots, 0);
  EXPECT_EQ(make_catalog_scenario("wave").capacity_kind, CapacityKind::kSine);
  EXPECT_EQ(make_catalog_scenario("gauss-markov").signal_kind,
            SignalKind::kGaussMarkov);
  const ScenarioConfig stress = make_catalog_scenario("stress");
  EXPECT_TRUE(stress.vbr);
  EXPECT_GT(stress.arrival_spread_slots, 0);
  EXPECT_EQ(stress.capacity_kind, CapacityKind::kSine);
}

TEST(Catalog, EveryPresetSimulatesToCompletion) {
  for (const ScenarioPreset& preset : scenario_catalog()) {
    ScenarioConfig config = make_catalog_scenario(preset.name, 4, 7);
    config.video_min_mb = 5.0;
    config.video_max_mb = 10.0;
    config.max_slots = 3000;
    const RunMetrics metrics = simulate(config, make_scheduler("default"));
    EXPECT_DOUBLE_EQ(metrics.completion_rate(), 1.0) << preset.name;
  }
}

TEST(Catalog, RejectsUnknownPreset) {
  EXPECT_THROW((void)make_catalog_scenario("bogus"), Error);
}

}  // namespace
}  // namespace jstream
