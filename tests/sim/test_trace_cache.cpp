// Trace cache behaviour: key identity mirrors exactly the scenario fields
// that shape the signal matrix, generation reproduces the per-endpoint
// models bit-for-bit, and the LRU honours its byte budget while never
// evicting the most recent entry.

#include "sim/trace_cache.hpp"

#include <gtest/gtest.h>

#include "sim/scenario.hpp"

namespace jstream {
namespace {

ScenarioConfig small_scenario(std::uint64_t seed = 7) {
  ScenarioConfig config = paper_scenario(/*users=*/4, seed);
  config.max_slots = 120;
  return config;
}

TEST(TraceKey, EqualConfigsShareAKey) {
  // paper_scenario builds a fresh LinkModel each call; the behavioural
  // fingerprint must still identify the two configs as cache-equal.
  const TraceKey a = make_trace_key(small_scenario());
  const TraceKey b = make_trace_key(small_scenario());
  EXPECT_TRUE(a == b);
  EXPECT_EQ(TraceKeyHash{}(a), TraceKeyHash{}(b));
}

TEST(TraceKey, SensitiveToSignalShapingFields) {
  const ScenarioConfig base = small_scenario();
  const TraceKey key = make_trace_key(base);

  ScenarioConfig other = base;
  other.seed = base.seed + 1;
  EXPECT_FALSE(key == make_trace_key(other));

  other = base;
  other.users += 1;
  EXPECT_FALSE(key == make_trace_key(other));

  other = base;
  other.max_slots += 1;
  EXPECT_FALSE(key == make_trace_key(other));

  other = base;
  other.signal_kind = SignalKind::kGaussMarkov;
  EXPECT_FALSE(key == make_trace_key(other));

  other = base;
  other.signal.period_slots *= 2.0;
  EXPECT_FALSE(key == make_trace_key(other));

  // VBR flips the bitrate builder from a uniform() draw to a split, shifting
  // every later per-user draw (including the sine phase) — different trace.
  other = base;
  other.vbr = true;
  EXPECT_FALSE(key == make_trace_key(other));
}

TEST(TraceKey, InsensitiveToNonSignalFields) {
  // Capacity, horizon-independent knobs, and metric ranges that consume a
  // fixed number of RNG draws do not alter the signal matrix.
  const ScenarioConfig base = small_scenario();
  ScenarioConfig other = base;
  other.capacity_kbps *= 2.0;
  other.video_min_mb += 50.0;
  other.video_max_mb += 50.0;
  other.bitrate_min_kbps += 10.0;
  other.bitrate_max_kbps += 10.0;
  other.arrival_spread_slots = 40;
  other.early_stop = false;
  EXPECT_TRUE(make_trace_key(base) == make_trace_key(other));
}

TEST(TraceKey, FaultFingerprintIsolatesFaultedCampaigns) {
  const ScenarioConfig base = small_scenario();
  EXPECT_EQ(make_trace_key(base).fault_fingerprint, 0u);

  ScenarioConfig faulted = base;
  faulted.faults.outage_rate_per_kslot = 5.0;
  const TraceKey faulted_key = make_trace_key(faulted);
  EXPECT_NE(faulted_key.fault_fingerprint, 0u);
  EXPECT_FALSE(make_trace_key(base) == faulted_key);

  // Different intensities and salts are distinct key spaces too.
  ScenarioConfig retuned = faulted;
  retuned.faults.outage_rate_per_kslot = 6.0;
  EXPECT_FALSE(faulted_key == make_trace_key(retuned));
  ScenarioConfig salted = faulted;
  salted.faults.salt = 3;
  EXPECT_FALSE(faulted_key == make_trace_key(salted));

  // Zero intensity with a nonzero salt is still the unfaulted key: no fault
  // can fire, so sharing the unfaulted entry is correct.
  ScenarioConfig inactive = base;
  inactive.faults.salt = 9;
  EXPECT_TRUE(make_trace_key(base) == make_trace_key(inactive));
}

TEST(TraceCacheTest, FaultedAndUnfaultedRunsNeverShareEntries) {
  TraceCache cache;
  const ScenarioConfig base = small_scenario();
  ScenarioConfig faulted = base;
  faulted.faults.staleness_rate_per_kslot = 8.0;

  const auto clean_set = cache.get_or_generate(base);
  const auto faulted_set = cache.get_or_generate(faulted);
  EXPECT_NE(clean_set.get(), faulted_set.get());  // isolated entries
  EXPECT_EQ(cache.misses(), 2u);
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.get_or_generate(faulted).get(), faulted_set.get());
  EXPECT_EQ(cache.get_or_generate(base).get(), clean_set.get());
  EXPECT_EQ(cache.hits(), 2u);

  // The isolation is about keys, not content: faults apply at collect time,
  // so the generated matrices are bit-identical across the two entries.
  for (std::size_t user = 0; user < base.users; ++user) {
    for (std::int64_t slot = 0; slot < base.max_slots; ++slot) {
      ASSERT_EQ(clean_set->signal_dbm(user, slot),
                faulted_set->signal_dbm(user, slot))
          << "user " << user << " slot " << slot;
    }
  }
}

TEST(TraceCacheTest, GenerateMatchesEndpointModelsBitForBit) {
  for (const SignalKind kind :
       {SignalKind::kSine, SignalKind::kGaussMarkov, SignalKind::kTrace}) {
    ScenarioConfig config = small_scenario();
    config.signal_kind = kind;
    if (kind == SignalKind::kTrace) {
      config.trace_dbm = {-55.0, -65.0, -75.0, -85.0, -95.0, -105.0};
    }
    const std::shared_ptr<const SignalTraceSet> set =
        generate_signal_trace_set(config);
    ASSERT_TRUE(set->link_derived());
    ASSERT_EQ(set->users(), config.users);
    ASSERT_EQ(set->slots(), config.max_slots);

    std::vector<UserEndpoint> endpoints = build_endpoints(config);
    for (std::size_t user = 0; user < endpoints.size(); ++user) {
      for (std::int64_t slot = 0; slot < config.max_slots; ++slot) {
        EXPECT_EQ(set->signal_dbm(user, slot), endpoints[user].signal->signal_dbm(slot))
            << "kind " << static_cast<int>(kind) << " user " << user << " slot "
            << slot;
      }
    }
  }
}

TEST(TraceCacheTest, HitsAndMissesAreCounted) {
  TraceCache cache;
  const ScenarioConfig config = small_scenario();
  const auto first = cache.get_or_generate(config);
  const auto second = cache.get_or_generate(config);
  EXPECT_EQ(first.get(), second.get());  // same immutable set, not a copy
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.resident_bytes(),
            SignalTraceSet::estimate_bytes(config.users, config.max_slots));
}

TEST(TraceCacheTest, EvictsLeastRecentlyUsedOverBudget) {
  const ScenarioConfig a = small_scenario(1);
  const ScenarioConfig b = small_scenario(2);
  const ScenarioConfig c = small_scenario(3);
  const std::size_t entry_bytes =
      SignalTraceSet::estimate_bytes(a.users, a.max_slots);
  TraceCache cache(2 * entry_bytes);  // room for two entries

  (void)cache.get_or_generate(a);
  (void)cache.get_or_generate(b);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.evictions(), 0u);

  (void)cache.get_or_generate(a);  // touch a: b becomes the LRU victim
  (void)cache.get_or_generate(c);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.evictions(), 1u);
  const std::uint64_t misses = cache.misses();
  (void)cache.get_or_generate(a);  // still resident
  EXPECT_EQ(cache.misses(), misses);
  (void)cache.get_or_generate(b);  // evicted: regenerates
  EXPECT_EQ(cache.misses(), misses + 1);
}

TEST(TraceCacheTest, MostRecentEntrySurvivesATinyBudget) {
  TraceCache cache(/*max_bytes=*/1);  // smaller than any entry
  const ScenarioConfig config = small_scenario();
  const auto set = cache.get_or_generate(config);
  ASSERT_NE(set, nullptr);
  EXPECT_EQ(cache.size(), 1u);  // kept despite the budget
  (void)cache.get_or_generate(small_scenario(99));
  EXPECT_EQ(cache.size(), 1u);  // previous entry gave way
  EXPECT_EQ(cache.evictions(), 1u);
}

TEST(TraceCacheTest, ShrinkingTheBudgetEvicts) {
  const ScenarioConfig a = small_scenario(1);
  const ScenarioConfig b = small_scenario(2);
  TraceCache cache;
  (void)cache.get_or_generate(a);
  (void)cache.get_or_generate(b);
  EXPECT_EQ(cache.size(), 2u);
  cache.set_max_bytes(1);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.max_bytes(), 1u);
}

TEST(TraceCacheTest, ClearEmptiesTheCache) {
  TraceCache cache;
  (void)cache.get_or_generate(small_scenario());
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.resident_bytes(), 0u);
}

}  // namespace
}  // namespace jstream
