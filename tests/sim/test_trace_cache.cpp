// Trace cache behaviour: key identity mirrors exactly the scenario fields
// that shape the signal matrix, generation reproduces the per-endpoint
// models bit-for-bit, and the LRU honours its byte budget while never
// evicting the most recent entry.

#include "sim/trace_cache.hpp"

#include <gtest/gtest.h>

#include "sim/scenario.hpp"

namespace jstream {
namespace {

ScenarioConfig small_scenario(std::uint64_t seed = 7) {
  ScenarioConfig config = paper_scenario(/*users=*/4, seed);
  config.max_slots = 120;
  return config;
}

TEST(TraceKey, EqualConfigsShareAKey) {
  // paper_scenario builds a fresh LinkModel each call; the behavioural
  // fingerprint must still identify the two configs as cache-equal.
  const TraceKey a = make_trace_key(small_scenario());
  const TraceKey b = make_trace_key(small_scenario());
  EXPECT_TRUE(a == b);
  EXPECT_EQ(TraceKeyHash{}(a), TraceKeyHash{}(b));
}

TEST(TraceKey, SensitiveToSignalShapingFields) {
  const ScenarioConfig base = small_scenario();
  const TraceKey key = make_trace_key(base);

  ScenarioConfig other = base;
  other.seed = base.seed + 1;
  EXPECT_FALSE(key == make_trace_key(other));

  other = base;
  other.users += 1;
  EXPECT_FALSE(key == make_trace_key(other));

  other = base;
  other.max_slots += 1;
  EXPECT_FALSE(key == make_trace_key(other));

  other = base;
  other.signal_kind = SignalKind::kGaussMarkov;
  EXPECT_FALSE(key == make_trace_key(other));

  other = base;
  other.signal.period_slots *= 2.0;
  EXPECT_FALSE(key == make_trace_key(other));

  // VBR flips the bitrate builder from a uniform() draw to a split, shifting
  // every later per-user draw (including the sine phase) — different trace.
  other = base;
  other.vbr = true;
  EXPECT_FALSE(key == make_trace_key(other));
}

TEST(TraceKey, InsensitiveToNonSignalFields) {
  // Capacity, horizon-independent knobs, and metric ranges that consume a
  // fixed number of RNG draws do not alter the signal matrix.
  const ScenarioConfig base = small_scenario();
  ScenarioConfig other = base;
  other.capacity_kbps *= 2.0;
  other.video_min_mb += 50.0;
  other.video_max_mb += 50.0;
  other.bitrate_min_kbps += 10.0;
  other.bitrate_max_kbps += 10.0;
  other.arrival_spread_slots = 40;
  other.early_stop = false;
  EXPECT_TRUE(make_trace_key(base) == make_trace_key(other));
}

TEST(TraceCacheTest, GenerateMatchesEndpointModelsBitForBit) {
  for (const SignalKind kind :
       {SignalKind::kSine, SignalKind::kGaussMarkov, SignalKind::kTrace}) {
    ScenarioConfig config = small_scenario();
    config.signal_kind = kind;
    if (kind == SignalKind::kTrace) {
      config.trace_dbm = {-55.0, -65.0, -75.0, -85.0, -95.0, -105.0};
    }
    const std::shared_ptr<const SignalTraceSet> set =
        generate_signal_trace_set(config);
    ASSERT_TRUE(set->link_derived());
    ASSERT_EQ(set->users(), config.users);
    ASSERT_EQ(set->slots(), config.max_slots);

    std::vector<UserEndpoint> endpoints = build_endpoints(config);
    for (std::size_t user = 0; user < endpoints.size(); ++user) {
      for (std::int64_t slot = 0; slot < config.max_slots; ++slot) {
        EXPECT_EQ(set->signal_dbm(user, slot), endpoints[user].signal->signal_dbm(slot))
            << "kind " << static_cast<int>(kind) << " user " << user << " slot "
            << slot;
      }
    }
  }
}

TEST(TraceCacheTest, HitsAndMissesAreCounted) {
  TraceCache cache;
  const ScenarioConfig config = small_scenario();
  const auto first = cache.get_or_generate(config);
  const auto second = cache.get_or_generate(config);
  EXPECT_EQ(first.get(), second.get());  // same immutable set, not a copy
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.resident_bytes(),
            SignalTraceSet::estimate_bytes(config.users, config.max_slots));
}

TEST(TraceCacheTest, EvictsLeastRecentlyUsedOverBudget) {
  const ScenarioConfig a = small_scenario(1);
  const ScenarioConfig b = small_scenario(2);
  const ScenarioConfig c = small_scenario(3);
  const std::size_t entry_bytes =
      SignalTraceSet::estimate_bytes(a.users, a.max_slots);
  TraceCache cache(2 * entry_bytes);  // room for two entries

  (void)cache.get_or_generate(a);
  (void)cache.get_or_generate(b);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.evictions(), 0u);

  (void)cache.get_or_generate(a);  // touch a: b becomes the LRU victim
  (void)cache.get_or_generate(c);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.evictions(), 1u);
  const std::uint64_t misses = cache.misses();
  (void)cache.get_or_generate(a);  // still resident
  EXPECT_EQ(cache.misses(), misses);
  (void)cache.get_or_generate(b);  // evicted: regenerates
  EXPECT_EQ(cache.misses(), misses + 1);
}

TEST(TraceCacheTest, MostRecentEntrySurvivesATinyBudget) {
  TraceCache cache(/*max_bytes=*/1);  // smaller than any entry
  const ScenarioConfig config = small_scenario();
  const auto set = cache.get_or_generate(config);
  ASSERT_NE(set, nullptr);
  EXPECT_EQ(cache.size(), 1u);  // kept despite the budget
  (void)cache.get_or_generate(small_scenario(99));
  EXPECT_EQ(cache.size(), 1u);  // previous entry gave way
  EXPECT_EQ(cache.evictions(), 1u);
}

TEST(TraceCacheTest, ShrinkingTheBudgetEvicts) {
  const ScenarioConfig a = small_scenario(1);
  const ScenarioConfig b = small_scenario(2);
  TraceCache cache;
  (void)cache.get_or_generate(a);
  (void)cache.get_or_generate(b);
  EXPECT_EQ(cache.size(), 2u);
  cache.set_max_bytes(1);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.max_bytes(), 1u);
}

TEST(TraceCacheTest, ClearEmptiesTheCache) {
  TraceCache cache;
  (void)cache.get_or_generate(small_scenario());
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.resident_bytes(), 0u);
}

}  // namespace
}  // namespace jstream
