// Multi-process sharded campaign runner. The headline requirement is
// differential: a >= 4-shard distributed run must be bit-identical — digest
// equality over the canonical encoding of every field, per-slot series
// included — to the serial campaign over the same specs, for every factory
// scheduler, with faults on, and in service mode. Around that sit the
// mechanics: shard-range geometry, frame encode/decode round trips, CPU-list
// parsing, and worker-failure propagation.

#include "sim/distrib.hpp"

#include <gtest/gtest.h>

#include "baselines/factory.hpp"
#include "common/error.hpp"
#include "session/service_campaign.hpp"
#include "sim/scenario.hpp"

namespace jstream {
namespace {

ScenarioConfig small_scenario(std::uint64_t seed = 51) {
  ScenarioConfig config = paper_scenario(/*users=*/6, seed);
  config.max_slots = 200;
  return config;
}

// Service cell small enough that sessions arrive, complete, and recycle
// population slots within the horizon (so session records exist).
ScenarioConfig service_cell(std::uint64_t seed) {
  ScenarioConfig config = small_scenario(seed);
  config.max_slots = 300;
  config.video_min_mb = 2.0;
  config.video_max_mb = 4.0;
  return config;
}

std::vector<CampaignSeries> all_scheduler_series() {
  std::vector<CampaignSeries> series;
  for (const std::string& name : scheduler_names()) {
    series.push_back(CampaignSeries{name, name, {}});
  }
  return series;
}

TEST(ShardRanges, PartitionIsContiguousOrderedAndBalanced) {
  for (const std::size_t cells : {1u, 2u, 7u, 16u, 100u}) {
    for (const std::size_t shards : {1u, 2u, 3u, 4u, 8u}) {
      const std::vector<ShardRange> ranges = shard_ranges(cells, shards);
      ASSERT_EQ(ranges.size(), std::min(cells, shards));
      std::size_t expect_begin = 0;
      std::size_t min_size = cells;
      std::size_t max_size = 0;
      for (const ShardRange& range : ranges) {
        EXPECT_EQ(range.begin, expect_begin);
        EXPECT_GT(range.size(), 0u);
        min_size = std::min(min_size, range.size());
        max_size = std::max(max_size, range.size());
        expect_begin = range.end;
      }
      EXPECT_EQ(expect_begin, cells);
      EXPECT_LE(max_size - min_size, 1u);
    }
  }
  EXPECT_EQ(shard_ranges(5, 0).size(), 1u);  // 0 shards treated as 1
  EXPECT_EQ(shard_ranges(5, 0)[0], (ShardRange{0, 5}));
}

TEST(ParseCpuList, AcceptsSysfsShapes) {
  EXPECT_EQ(parse_cpu_list("0-3"), (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(parse_cpu_list("0-2,8,10-11"), (std::vector<int>{0, 1, 2, 8, 10, 11}));
  EXPECT_EQ(parse_cpu_list(" 4 , 6-7 \n"), (std::vector<int>{4, 6, 7}));
  EXPECT_EQ(parse_cpu_list("12"), (std::vector<int>{12}));
  EXPECT_TRUE(parse_cpu_list("").empty());
  EXPECT_THROW((void)parse_cpu_list("a-b"), Error);
  EXPECT_THROW((void)parse_cpu_list("3-1"), Error);
  EXPECT_THROW((void)parse_cpu_list("1-"), Error);
  EXPECT_THROW((void)parse_cpu_list("-5"), Error);
  EXPECT_THROW((void)parse_cpu_list("1.5"), Error);
}

TEST(FrameCodec, ScalarsRoundTripAndTruncationThrows) {
  ByteWriter out;
  out.u32(0xdeadbeefU);
  out.u64(0x0123456789abcdefULL);
  out.i64(-42);
  out.f64(-0.0);
  out.f64(1e-308);
  out.boolean(true);
  out.doubles(std::vector<double>{1.5, -2.25, 3.75});
  out.doubles(std::vector<double>{});

  ByteReader in(out.bytes());
  EXPECT_EQ(in.u32(), 0xdeadbeefU);
  EXPECT_EQ(in.u64(), 0x0123456789abcdefULL);
  EXPECT_EQ(in.i64(), -42);
  const double negative_zero = in.f64();
  EXPECT_EQ(negative_zero, 0.0);
  EXPECT_TRUE(std::signbit(negative_zero));  // bit-exact, not just value-equal
  EXPECT_EQ(in.f64(), 1e-308);
  EXPECT_TRUE(in.boolean());
  EXPECT_EQ(in.doubles(), (std::vector<double>{1.5, -2.25, 3.75}));
  EXPECT_TRUE(in.doubles().empty());
  EXPECT_NO_THROW(in.finish());
  EXPECT_THROW((void)in.u32(), Error);  // past the end

  ByteWriter trailing;
  trailing.u64(1);
  trailing.u64(2);
  ByteReader short_read(trailing.bytes());
  (void)short_read.u64();
  EXPECT_THROW(short_read.finish(), Error);
}

TEST(FrameCodec, RunMetricsRoundTripIsBitExact) {
  ExperimentSpec spec;
  spec.label = "ema";
  spec.scheduler = "ema";  // exact solver: exercises the certificate fields
  spec.scenario = small_scenario();
  const RunMetrics original = run_experiment(spec, /*keep_series=*/true);
  ASSERT_TRUE(original.has_certificate);
  ASSERT_FALSE(original.slot_fairness.empty());

  ByteWriter out;
  encode_run_metrics(out, original);
  ByteReader in(out.bytes());
  const RunMetrics decoded = decode_run_metrics(in);
  EXPECT_NO_THROW(in.finish());
  EXPECT_EQ(metrics_digest(decoded), metrics_digest(original));

  // The digest moves when any field moves by even one ULP.
  RunMetrics perturbed = decoded;
  perturbed.per_user[0].trans_mj =
      std::nextafter(perturbed.per_user[0].trans_mj, 1e300);
  EXPECT_NE(metrics_digest(perturbed), metrics_digest(original));

  // Truncated payloads throw instead of decoding garbage.
  for (const std::size_t keep :
       {std::size_t{0}, std::size_t{7}, std::size_t{40}, out.bytes().size() - 1}) {
    ByteReader cut(std::span(out.bytes().data(), keep));
    EXPECT_THROW((void)decode_run_metrics(cut), Error) << "keep " << keep;
  }
}

TEST(FrameCodec, ServiceResultRoundTripIsBitExact) {
  ServiceExperimentSpec spec;
  spec.label = "default";
  spec.scheduler = "default";
  spec.config.cell = service_cell(55);
  spec.config.arrivals.kind = ArrivalKind::kPoisson;
  spec.config.arrivals.rate_per_slot = 0.2;
  spec.config.warmup_slots = 40;
  spec.config.keep_session_records = true;  // exercises the records payload
  const ServiceResult original = run_service_experiment(spec);
  ASSERT_GT(original.service.offered, 0);
  ASSERT_FALSE(original.service.records.empty());

  ByteWriter out;
  encode_service_result(out, original);
  ByteReader in(out.bytes());
  const ServiceResult decoded = decode_service_result(in);
  EXPECT_NO_THROW(in.finish());
  EXPECT_EQ(service_digest(decoded), service_digest(original));
  EXPECT_EQ(decoded.service.records.size(), original.service.records.size());

  ServiceResult perturbed = decoded;
  perturbed.service.concurrency_sum += 1.0;
  EXPECT_NE(service_digest(perturbed), service_digest(original));
}

TEST(Distrib, ShardedMatchesSerialForEveryScheduler) {
  const std::vector<ExperimentSpec> specs =
      make_campaign_grid(small_scenario(), all_scheduler_series(),
                         /*replications=*/2);
  CampaignOptions serial_options;
  serial_options.threads = 2;
  serial_options.keep_series = true;
  const std::vector<RunMetrics> serial = run_campaign(specs, serial_options);

  DistribOptions distrib;
  distrib.processes = 4;
  distrib.campaign = serial_options;
  const std::vector<RunMetrics> sharded = run_campaign_distributed(specs, distrib);

  ASSERT_EQ(sharded.size(), serial.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(metrics_digest(sharded[i]), metrics_digest(serial[i]))
        << specs[i].label << " seed " << specs[i].scenario.seed;
  }
  EXPECT_EQ(metrics_digest(std::span<const RunMetrics>(sharded)),
            metrics_digest(std::span<const RunMetrics>(serial)));
}

TEST(Distrib, ShardedMatchesSerialUnderFaults) {
  ScenarioConfig faulted = small_scenario(61);
  faulted.faults.outage_rate_per_kslot = 8.0;
  faulted.faults.staleness_rate_per_kslot = 12.0;
  faulted.faults.departure_fraction = 0.25;
  const std::vector<CampaignSeries> series = {
      {"default", "default", {}}, {"rtma", "rtma", {}}, {"ema-fast", "ema-fast", {}}};
  const std::vector<ExperimentSpec> specs =
      make_campaign_grid(faulted, series, /*replications=*/3);

  CampaignOptions options;
  options.keep_series = true;
  const std::vector<RunMetrics> serial = run_campaign(specs, options);
  DistribOptions distrib;
  distrib.processes = 4;
  distrib.campaign = options;
  const std::vector<RunMetrics> sharded = run_campaign_distributed(specs, distrib);
  ASSERT_EQ(sharded.size(), serial.size());
  EXPECT_EQ(metrics_digest(std::span<const RunMetrics>(sharded)),
            metrics_digest(std::span<const RunMetrics>(serial)));
}

TEST(Distrib, ShardedMatchesSerialInServiceMode) {
  ServiceConfig base;
  base.cell = service_cell(71);
  base.arrivals.kind = ArrivalKind::kPoisson;
  base.arrivals.rate_per_slot = 0.2;
  base.warmup_slots = 40;
  base.keep_session_records = true;
  std::vector<ServiceExperimentSpec> specs;
  for (const std::string& name : scheduler_names()) {
    ServiceExperimentSpec spec;
    spec.label = name;
    spec.scheduler = name;
    spec.config = base;
    specs.push_back(std::move(spec));
  }

  const std::vector<ServiceResult> serial = run_service_campaign(specs);
  DistribOptions distrib;
  distrib.processes = 4;
  const std::vector<ServiceResult> sharded =
      run_service_campaign_distributed(specs, distrib);
  ASSERT_EQ(sharded.size(), serial.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(service_digest(sharded[i]), service_digest(serial[i]))
        << specs[i].label;
  }
  EXPECT_EQ(service_digest(std::span<const ServiceResult>(sharded)),
            service_digest(std::span<const ServiceResult>(serial)));
}

TEST(Distrib, MoreShardsThanCellsAndSingleShardBothWork) {
  const std::vector<CampaignSeries> series = {{"default", "default", {}}};
  const std::vector<ExperimentSpec> specs =
      make_campaign_grid(small_scenario(81), series, /*replications=*/3);
  const std::vector<RunMetrics> serial = run_campaign(specs, {});

  for (const std::size_t processes : {1u, 16u}) {
    DistribOptions distrib;
    distrib.processes = processes;
    const std::vector<RunMetrics> sharded = run_campaign_distributed(specs, distrib);
    ASSERT_EQ(sharded.size(), serial.size()) << processes << " processes";
    EXPECT_EQ(metrics_digest(std::span<const RunMetrics>(sharded)),
              metrics_digest(std::span<const RunMetrics>(serial)))
        << processes << " processes";
  }
  EXPECT_TRUE(run_campaign_distributed({}, {}).empty());
}

TEST(Distrib, NumaBindRunsAndStaysBitIdentical) {
  // Placement must never change results — on single-node machines it is a
  // no-op; on NUMA machines it only pins workers.
  const std::vector<CampaignSeries> series = {{"default", "default", {}}};
  const std::vector<ExperimentSpec> specs =
      make_campaign_grid(small_scenario(91), series, /*replications=*/2);
  const std::vector<RunMetrics> serial = run_campaign(specs, {});
  DistribOptions distrib;
  distrib.processes = 2;
  distrib.numa_bind = true;
  const std::vector<RunMetrics> sharded = run_campaign_distributed(specs, distrib);
  EXPECT_EQ(metrics_digest(std::span<const RunMetrics>(sharded)),
            metrics_digest(std::span<const RunMetrics>(serial)));
}

class ThrowingEncoder final : public ShardEncoder {
 public:
  std::vector<std::uint8_t> encode_slice(std::size_t shard, ShardRange) override {
    if (shard == 1) throw Error("synthetic shard failure");
    return {};
  }
};

TEST(Distrib, WorkerExceptionSurfacesWithItsMessage) {
  ThrowingEncoder encoder;
  try {
    (void)run_forked_shards(/*cells=*/8, /*processes=*/4, /*numa_bind=*/false,
                            encoder);
    FAIL() << "expected the shard failure to propagate";
  } catch (const Error& error) {
    EXPECT_NE(std::string(error.what()).find("shard 1"), std::string::npos)
        << error.what();
    EXPECT_NE(std::string(error.what()).find("synthetic shard failure"),
              std::string::npos)
        << error.what();
  }
}

}  // namespace
}  // namespace jstream
