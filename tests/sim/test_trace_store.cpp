// Persistent trace tier correctness: spill/promote round trips are
// bit-identical, corrupt or mismatched files degrade to regeneration (never
// a crash, never wrong data), and the TraceCache integration spills on
// eviction / flush and promotes on miss with zero regenerations when warm.

#include "sim/trace_store.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "common/error.hpp"
#include "sim/campaign.hpp"
#include "sim/scenario.hpp"
#include "sim/trace_cache.hpp"

namespace jstream {
namespace {

class TraceStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (std::filesystem::temp_directory_path() /
            ("jstream_store_" +
             std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
             "_" + ::testing::UnitTest::GetInstance()->current_test_info()->name()))
               .string();
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string dir_;
};

ScenarioConfig small_scenario(std::uint64_t seed = 21) {
  ScenarioConfig config = paper_scenario(/*users=*/6, seed);
  config.max_slots = 200;
  return config;
}

void expect_identical_sets(const SignalTraceSet& a, const SignalTraceSet& b) {
  ASSERT_EQ(a.users(), b.users());
  ASSERT_EQ(a.slots(), b.slots());
  for (std::size_t user = 0; user < a.users(); ++user) {
    for (std::int64_t slot = 0; slot < a.slots(); ++slot) {
      EXPECT_EQ(a.signal_dbm(user, slot), b.signal_dbm(user, slot));
      EXPECT_EQ(a.throughput_kbps(user, slot), b.throughput_kbps(user, slot));
      EXPECT_EQ(a.energy_per_kb(user, slot), b.energy_per_kb(user, slot));
    }
  }
}

TEST_F(TraceStoreTest, SpillPromoteRoundTripIsBitIdentical) {
  TraceStore store(dir_);
  const ScenarioConfig scenario = small_scenario();
  const std::uint64_t fp = trace_key_fingerprint(make_trace_key(scenario));
  const std::shared_ptr<const SignalTraceSet> generated =
      generate_signal_trace_set(scenario);

  EXPECT_FALSE(store.contains(fp));
  EXPECT_EQ(store.try_load(fp, scenario.users, scenario.max_slots), nullptr);
  EXPECT_TRUE(store.put(fp, *generated));
  EXPECT_TRUE(store.contains(fp));
  EXPECT_FALSE(store.put(fp, *generated));  // idempotent: second put skips
  EXPECT_EQ(store.spills(), 1u);

  const std::shared_ptr<const SignalTraceSet> promoted =
      store.try_load(fp, scenario.users, scenario.max_slots);
  ASSERT_NE(promoted, nullptr);
  EXPECT_TRUE(promoted->mapped());
  expect_identical_sets(*generated, *promoted);
  EXPECT_EQ(store.promotions(), 1u);
  EXPECT_EQ(store.rejections(), 0u);
}

TEST_F(TraceStoreTest, CorruptFileIsDroppedAndReportedAsMiss) {
  TraceStore store(dir_);
  const ScenarioConfig scenario = small_scenario();
  const std::uint64_t fp = trace_key_fingerprint(make_trace_key(scenario));
  ASSERT_TRUE(store.put(fp, *generate_signal_trace_set(scenario)));

  // Flip one payload byte behind the checksum's back.
  {
    std::fstream file(store.path_for(fp),
                      std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(file.is_open());
    file.seekp(64 + 3);
    const char byte = 0x7f;
    file.write(&byte, 1);
  }
  EXPECT_EQ(store.try_load(fp, scenario.users, scenario.max_slots), nullptr);
  EXPECT_EQ(store.rejections(), 1u);
  // The poisoned file was unlinked so a fresh spill can land.
  EXPECT_FALSE(store.contains(fp));
  EXPECT_TRUE(store.put(fp, *generate_signal_trace_set(scenario)));
  EXPECT_NE(store.try_load(fp, scenario.users, scenario.max_slots), nullptr);
}

TEST_F(TraceStoreTest, DimensionDisagreementRejects) {
  TraceStore store(dir_);
  const ScenarioConfig scenario = small_scenario();
  const std::uint64_t fp = trace_key_fingerprint(make_trace_key(scenario));
  ASSERT_TRUE(store.put(fp, *generate_signal_trace_set(scenario)));
  EXPECT_EQ(store.try_load(fp, scenario.users + 1, scenario.max_slots), nullptr);
  EXPECT_EQ(store.rejections(), 1u);
}

TEST_F(TraceStoreTest, RejectsUnusableDirectory) {
  EXPECT_THROW(TraceStore(""), Error);
  EXPECT_THROW(TraceStore("/proc/no/such/dir"), Error);
}

TEST_F(TraceStoreTest, CacheSpillsOnEvictionAndPromotesOnMiss) {
  TraceStore store(dir_);
  // Budget of one entry: inserting the second scenario evicts (and spills)
  // the first.
  const ScenarioConfig first = small_scenario(21);
  const ScenarioConfig second = small_scenario(22);
  TraceCache cache(SignalTraceSet::estimate_bytes(first.users, first.max_slots));
  cache.attach_store(&store);

  const std::shared_ptr<const SignalTraceSet> generated =
      cache.get_or_generate(first);
  EXPECT_EQ(cache.generations(), 1u);
  (void)cache.get_or_generate(second);
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_EQ(store.spills(), 1u);
  EXPECT_TRUE(store.contains(trace_key_fingerprint(make_trace_key(first))));

  // Touching the first scenario again misses the LRU but promotes from disk:
  // no regeneration, bit-identical data.
  const std::shared_ptr<const SignalTraceSet> promoted =
      cache.get_or_generate(first);
  EXPECT_EQ(cache.generations(), 2u);  // only the two cold generations
  EXPECT_EQ(cache.promotions(), 1u);
  EXPECT_TRUE(promoted->mapped());
  expect_identical_sets(*generated, *promoted);
}

TEST_F(TraceStoreTest, SpillResidentFlushesTheWholeWorkingSet) {
  TraceStore store(dir_);
  TraceCache cache;  // default budget: nothing evicts
  cache.attach_store(&store);
  const ScenarioConfig first = small_scenario(31);
  const ScenarioConfig second = small_scenario(32);
  (void)cache.get_or_generate(first);
  (void)cache.get_or_generate(second);
  EXPECT_EQ(store.spills(), 0u);  // no evictions yet, nothing written
  cache.spill_resident();
  EXPECT_EQ(store.spills(), 2u);
  EXPECT_TRUE(store.contains(trace_key_fingerprint(make_trace_key(first))));
  EXPECT_TRUE(store.contains(trace_key_fingerprint(make_trace_key(second))));
  cache.spill_resident();  // idempotent: files already present
  EXPECT_EQ(store.spills(), 2u);
}

TEST_F(TraceStoreTest, CampaignStoreOptionWarmsTheStore) {
  TraceStore store(dir_);
  const std::vector<CampaignSeries> series = {{"default", "default", {}},
                                              {"rtma", "rtma", {}}};
  const std::vector<ExperimentSpec> specs =
      make_campaign_grid(small_scenario(41), series, /*replications=*/2);

  TraceCache cold_cache;
  CampaignOptions cold;
  cold.threads = 2;
  cold.cache = &cold_cache;
  cold.store = &store;
  const std::vector<RunMetrics> cold_results = run_campaign(specs, cold);
  EXPECT_EQ(cold_cache.generations(), 2u);  // one per seed
  EXPECT_EQ(store.spills(), 2u);            // end-of-run flush persisted both
  EXPECT_EQ(cold_cache.store(), nullptr);   // attachment is scoped to the run

  // A fresh cache over a warm store: every miss promotes, nothing generates.
  TraceCache warm_cache;
  CampaignOptions warm = cold;
  warm.cache = &warm_cache;
  const std::vector<RunMetrics> warm_results = run_campaign(specs, warm);
  EXPECT_EQ(warm_cache.generations(), 0u);
  EXPECT_EQ(warm_cache.promotions(), 2u);
  ASSERT_EQ(warm_results.size(), cold_results.size());
  for (std::size_t i = 0; i < warm_results.size(); ++i) {
    EXPECT_EQ(warm_results[i].slots_run, cold_results[i].slots_run);
    EXPECT_EQ(warm_results[i].total_energy_mj(), cold_results[i].total_energy_mj());
    EXPECT_EQ(warm_results[i].total_rebuffer_s(), cold_results[i].total_rebuffer_s());
  }
}

}  // namespace
}  // namespace jstream
