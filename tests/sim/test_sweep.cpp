#include "sim/sweep.hpp"

#include <gtest/gtest.h>

namespace jstream {
namespace {

ScenarioConfig small_scenario(std::size_t users, std::uint64_t seed) {
  ScenarioConfig config = paper_scenario(users, seed);
  config.video_min_mb = 5.0;
  config.video_max_mb = 10.0;
  config.max_slots = 1500;
  return config;
}

TEST(Sweep, PreservesSpecOrder) {
  std::vector<ExperimentSpec> specs;
  for (std::size_t users : {2UL, 4UL, 6UL}) {
    specs.push_back({"default", "default", small_scenario(users, 1), {}});
  }
  const auto results = run_sweep(specs, 2);
  ASSERT_EQ(results.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(results[i].per_user.size(), specs[i].scenario.users);
  }
}

TEST(Sweep, MatchesSequentialExecution) {
  std::vector<ExperimentSpec> specs;
  specs.push_back({"default", "default", small_scenario(3, 7), {}});
  specs.push_back({"throttling", "throttling", small_scenario(3, 7), {}});
  const auto parallel = run_sweep(specs, 2);
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const RunMetrics sequential = run_experiment(specs[i], false);
    EXPECT_DOUBLE_EQ(parallel[i].total_energy_mj(), sequential.total_energy_mj());
    EXPECT_DOUBLE_EQ(parallel[i].total_rebuffer_s(), sequential.total_rebuffer_s());
  }
}

TEST(Sweep, EmptyBatchIsFine) {
  const std::vector<ExperimentSpec> specs;
  EXPECT_TRUE(run_sweep(specs).empty());
}

TEST(Sweep, KeepSeriesFlagForwarded) {
  std::vector<ExperimentSpec> specs{{"default", "default", small_scenario(2, 5), {}}};
  const auto without = run_sweep(specs, 1, /*keep_series=*/false);
  const auto with = run_sweep(specs, 1, /*keep_series=*/true);
  EXPECT_TRUE(without[0].slot_energy_mj.empty());
  EXPECT_FALSE(with[0].slot_energy_mj.empty());
}

}  // namespace
}  // namespace jstream
