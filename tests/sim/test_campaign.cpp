// Campaign engine correctness. The headline requirement is differential:
// running any scheduler against the precomputed trace substrate must be
// bit-identical — slots run, every per-user total, and every per-slot series
// — to the plain per-run path that drives the SignalModels incrementally.
// On top of that, run_campaign must agree with run_sweep cell for cell, and
// the grid builder must order specs rep-major.

#include "sim/campaign.hpp"

#include <gtest/gtest.h>

#include "baselines/factory.hpp"
#include "sim/scenario.hpp"
#include "sim/trace_cache.hpp"

namespace jstream {
namespace {

ScenarioConfig small_scenario(std::uint64_t seed = 11) {
  ScenarioConfig config = paper_scenario(/*users=*/8, seed);
  config.max_slots = 300;
  return config;
}

void expect_identical_runs(const RunMetrics& a, const RunMetrics& b,
                           const std::string& label) {
  EXPECT_EQ(a.slots_run, b.slots_run) << label;
  ASSERT_EQ(a.per_user.size(), b.per_user.size()) << label;
  for (std::size_t u = 0; u < a.per_user.size(); ++u) {
    EXPECT_EQ(a.per_user[u].trans_mj, b.per_user[u].trans_mj) << label << " u" << u;
    EXPECT_EQ(a.per_user[u].tail_mj, b.per_user[u].tail_mj) << label << " u" << u;
    EXPECT_EQ(a.per_user[u].rebuffer_s, b.per_user[u].rebuffer_s)
        << label << " u" << u;
    EXPECT_EQ(a.per_user[u].delivered_kb, b.per_user[u].delivered_kb)
        << label << " u" << u;
    EXPECT_EQ(a.per_user[u].session_slots, b.per_user[u].session_slots)
        << label << " u" << u;
    EXPECT_EQ(a.per_user[u].tx_slots, b.per_user[u].tx_slots) << label << " u" << u;
    EXPECT_EQ(a.per_user[u].playback_finished, b.per_user[u].playback_finished)
        << label << " u" << u;
  }
  ASSERT_EQ(a.slot_fairness.size(), b.slot_fairness.size()) << label;
  ASSERT_EQ(a.slot_energy_mj.size(), b.slot_energy_mj.size()) << label;
  ASSERT_EQ(a.rebuffer_samples_s.size(), b.rebuffer_samples_s.size()) << label;
  for (std::size_t i = 0; i < a.slot_fairness.size(); ++i) {
    EXPECT_EQ(a.slot_fairness[i], b.slot_fairness[i]) << label << " slot " << i;
  }
  for (std::size_t i = 0; i < a.slot_energy_mj.size(); ++i) {
    EXPECT_EQ(a.slot_energy_mj[i], b.slot_energy_mj[i]) << label << " slot " << i;
  }
  for (std::size_t i = 0; i < a.rebuffer_samples_s.size(); ++i) {
    EXPECT_EQ(a.rebuffer_samples_s[i], b.rebuffer_samples_s[i])
        << label << " sample " << i;
  }
}

TEST(Campaign, TracedRunsBitIdenticalForEveryScheduler) {
  const ScenarioConfig scenario = small_scenario();
  const std::shared_ptr<const SignalTraceSet> trace =
      generate_signal_trace_set(scenario);
  for (const std::string& name : scheduler_names()) {
    ExperimentSpec spec;
    spec.label = name;
    spec.scheduler = name;
    spec.scenario = scenario;
    const RunMetrics plain = run_experiment(spec, /*keep_series=*/true);
    const RunMetrics traced = run_experiment(spec, /*keep_series=*/true, trace);
    expect_identical_runs(plain, traced, name);
  }
}

TEST(Campaign, GridIsRepMajor) {
  const std::vector<CampaignSeries> series = {
      {"a", "default", {}},
      {"b", "rtma", {}},
  };
  const ScenarioConfig base = small_scenario(5);
  const std::vector<ExperimentSpec> specs = make_campaign_grid(base, series, 3);
  ASSERT_EQ(specs.size(), 6u);
  for (std::size_t rep = 0; rep < 3; ++rep) {
    for (std::size_t s = 0; s < series.size(); ++s) {
      const ExperimentSpec& spec = specs[rep * series.size() + s];
      EXPECT_EQ(spec.label, series[s].label);
      EXPECT_EQ(spec.scheduler, series[s].scheduler);
      EXPECT_EQ(spec.scenario.seed, base.seed + rep);
    }
  }
}

TEST(Campaign, MatchesSweepCellForCell) {
  const std::vector<CampaignSeries> series = {
      {"default", "default", {}},
      {"rtma", "rtma", {}},
      {"ema-fast", "ema-fast", {}},
  };
  const std::vector<ExperimentSpec> specs =
      make_campaign_grid(small_scenario(), series, /*replications=*/2);

  const std::vector<RunMetrics> swept =
      run_sweep(specs, /*threads=*/2, /*keep_series=*/true);

  TraceCache cache;
  CampaignOptions options;
  options.threads = 2;
  options.keep_series = true;
  options.cache = &cache;
  const std::vector<RunMetrics> campaign = run_campaign(specs, options);

  ASSERT_EQ(campaign.size(), swept.size());
  for (std::size_t i = 0; i < campaign.size(); ++i) {
    expect_identical_runs(swept[i], campaign[i], specs[i].label);
  }
  // 2 replications over one scenario: one generation per seed, rest hits.
  EXPECT_EQ(cache.misses(), 2u);
  EXPECT_EQ(cache.hits(), static_cast<std::uint64_t>(specs.size()) - 2u);
}

TEST(Campaign, UncachedModeMatchesCachedMode) {
  const std::vector<CampaignSeries> series = {{"default", "default", {}}};
  const std::vector<ExperimentSpec> specs =
      make_campaign_grid(small_scenario(), series, /*replications=*/2);

  TraceCache cache;
  CampaignOptions cached;
  cached.cache = &cache;
  cached.keep_series = true;
  CampaignOptions uncached = cached;
  uncached.use_trace_cache = false;

  const std::vector<RunMetrics> with_cache = run_campaign(specs, cached);
  const std::vector<RunMetrics> without_cache = run_campaign(specs, uncached);
  ASSERT_EQ(with_cache.size(), without_cache.size());
  for (std::size_t i = 0; i < with_cache.size(); ++i) {
    expect_identical_runs(with_cache[i], without_cache[i], specs[i].label);
  }
  // Uncached mode generated per cell and never touched the cache.
  EXPECT_EQ(cache.misses(), 2u);
  EXPECT_EQ(cache.hits(), 0u);
}

TEST(Campaign, ReferenceHelpersAcceptACache) {
  const ScenarioConfig scenario = small_scenario();
  TraceCache cache;
  const DefaultReference plain = run_default_reference(scenario);
  const DefaultReference cached = run_default_reference(scenario, &cache);
  EXPECT_EQ(plain.energy_per_user_slot_mj, cached.energy_per_user_slot_mj);
  EXPECT_EQ(plain.rebuffer_per_user_slot_s, cached.rebuffer_per_user_slot_s);
  EXPECT_EQ(plain.trans_per_tx_slot_mj, cached.trans_per_tx_slot_mj);
  EXPECT_EQ(cache.misses(), 1u);

  const double v_plain =
      calibrate_v_for_rebuffer(scenario, /*omega_s=*/0.01, 1e-4, 10.0, 4);
  const double v_cached = calibrate_v_for_rebuffer(scenario, /*omega_s=*/0.01, 1e-4,
                                                   10.0, 4, &cache);
  EXPECT_EQ(v_plain, v_cached);
  EXPECT_EQ(cache.misses(), 1u);  // calibration reused the resident trace
}

}  // namespace
}  // namespace jstream
