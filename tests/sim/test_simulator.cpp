#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include "baselines/factory.hpp"
#include "common/error.hpp"
#include "common/units.hpp"

namespace jstream {
namespace {

ScenarioConfig small_scenario(std::size_t users = 4, std::uint64_t seed = 3) {
  ScenarioConfig config = paper_scenario(users, seed);
  // Small videos keep tests fast while exercising full sessions.
  config.video_min_mb = 5.0;
  config.video_max_mb = 10.0;
  config.max_slots = 2000;
  return config;
}

TEST(Simulator, CompletesAllSessionsWithEarlyStop) {
  const RunMetrics metrics = simulate(small_scenario(), make_scheduler("default"));
  EXPECT_DOUBLE_EQ(metrics.completion_rate(), 1.0);
  EXPECT_LT(metrics.slots_run, 2000);
  for (const auto& user : metrics.per_user) {
    EXPECT_GT(user.delivered_kb, 0.0);
    EXPECT_GT(user.session_slots, 0);
  }
}

TEST(Simulator, DeliversExactlyTheContent) {
  const ScenarioConfig config = small_scenario();
  const RunMetrics metrics = simulate(config, make_scheduler("default"));
  const auto endpoints = build_endpoints(config);
  for (std::size_t i = 0; i < endpoints.size(); ++i) {
    EXPECT_NEAR(metrics.per_user[i].delivered_kb, endpoints[i].session.size_kb(), 1e-6);
  }
}

TEST(Simulator, SessionSlotsAtLeastPlaybackDuration) {
  const ScenarioConfig config = small_scenario();
  const RunMetrics metrics = simulate(config, make_scheduler("default"));
  const auto endpoints = build_endpoints(config);
  for (std::size_t i = 0; i < endpoints.size(); ++i) {
    EXPECT_GE(as_double(metrics.per_user[i].session_slots) + 1.0,
              endpoints[i].session.total_playback_s());
  }
}

TEST(Simulator, HorizonCapRespectedWithoutEarlyStop) {
  ScenarioConfig config = small_scenario();
  config.early_stop = false;
  config.max_slots = 120;
  const RunMetrics metrics = simulate(config, make_scheduler("default"));
  EXPECT_EQ(metrics.slots_run, 120);
}

TEST(Simulator, EveryFactorySchedulerRunsCleanly) {
  for (const std::string& name : scheduler_names()) {
    const RunMetrics metrics = simulate(small_scenario(3), make_scheduler(name));
    EXPECT_GT(metrics.slots_run, 0) << name;
    EXPECT_GT(metrics.total_energy_mj(), 0.0) << name;
    EXPECT_DOUBLE_EQ(metrics.completion_rate(), 1.0) << name;
  }
}

TEST(Simulator, FiniteBackhaulSlowsDelivery) {
  ScenarioConfig unconstrained = small_scenario();
  ScenarioConfig constrained = small_scenario();
  constrained.backhaul_kbps = 500.0;  // far below the radio capacity
  const RunMetrics fast = simulate(unconstrained, make_scheduler("default"));
  const RunMetrics slow = simulate(constrained, make_scheduler("default"));
  EXPECT_GT(slow.total_rebuffer_s(), fast.total_rebuffer_s());
}

TEST(Simulator, RejectsInvalidConstruction) {
  EXPECT_THROW(Simulator(small_scenario(), nullptr), Error);
  ScenarioConfig bad = small_scenario();
  bad.users = 0;
  EXPECT_THROW(Simulator(bad, make_scheduler("default")), Error);
}

}  // namespace
}  // namespace jstream
