#include "sim/oracle.hpp"

#include <gtest/gtest.h>

#include "baselines/factory.hpp"
#include "common/error.hpp"
#include "sim/simulator.hpp"

namespace jstream {
namespace {

ScenarioConfig small_scenario(std::uint64_t seed = 3) {
  ScenarioConfig config = paper_scenario(6, seed);
  config.video_min_mb = 8.0;
  config.video_max_mb = 15.0;
  config.max_slots = 2500;
  return config;
}

TEST(Oracle, ProducesAFeasibleSchedule) {
  const OracleResult result = offline_energy_bound(small_scenario());
  EXPECT_TRUE(result.feasible);
  EXPECT_GT(result.total_trans_mj, 0.0);
  EXPECT_GT(result.total_tail_mj, 0.0);
  EXPECT_GT(result.horizon_slots, 0);
  EXPECT_EQ(result.per_user_trans_mj.size(), 6u);
}

TEST(Oracle, TransmissionEnergyBoundsDataCost) {
  // The oracle cannot pay less than every byte at the best possible price,
  // nor more than every byte at the worst.
  const ScenarioConfig config = small_scenario();
  const OracleResult result = offline_energy_bound(config);
  const auto endpoints = build_endpoints(config);
  double total_kb = 0.0;
  for (const auto& endpoint : endpoints) total_kb += endpoint.session.size_kb();
  const double best_price = config.link.power->energy_per_kb(-50.0);
  const double worst_price = config.link.power->energy_per_kb(-110.0);
  EXPECT_GE(result.total_trans_mj, total_kb * best_price);
  EXPECT_LE(result.total_trans_mj, total_kb * worst_price);
}

TEST(Oracle, UndercutsLowStallOnlineSchedulers) {
  // The oracle is the cheapest ZERO-STALL schedule; any online policy that
  // also keeps playback smooth must pay at least as much for its bytes.
  // (Heavy-stall policies can defer past the oracle's deadlines and are not
  // comparable; tails are policy-shaped, so the comparison is Eq. 3 only.)
  const ScenarioConfig config = small_scenario(11);
  const OracleResult oracle = offline_energy_bound(config);
  for (const char* name : {"default", "throttling", "onoff", "estreamer"}) {
    const RunMetrics online = simulate(config, make_scheduler(name), false);
    EXPECT_LE(oracle.total_trans_mj, online.total_trans_mj() * 1.0 + 1e-6)
        << name;
  }
}

TEST(Oracle, CheaperWhenSignalsAreStronger) {
  ScenarioConfig weak = small_scenario(17);
  ScenarioConfig strong = small_scenario(17);
  strong.signal.min_dbm = -80.0;  // lift the floor: every slot is cheaper
  const OracleResult weak_bound = offline_energy_bound(weak);
  const OracleResult strong_bound = offline_energy_bound(strong);
  EXPECT_LT(strong_bound.total_trans_mj, weak_bound.total_trans_mj);
}

TEST(Oracle, StartupAllowanceRelaxesTheSchedule) {
  // More startup slack can only reduce (or keep) the cost: deadlines loosen.
  const ScenarioConfig config = small_scenario(19);
  OracleSpec tight;
  tight.startup_slots = 1;
  OracleSpec loose;
  loose.startup_slots = 60;
  const OracleResult a = offline_energy_bound(config, tight);
  const OracleResult b = offline_energy_bound(config, loose);
  EXPECT_LE(b.total_trans_mj, a.total_trans_mj + 1e-9);
}

TEST(Oracle, AverageNormalization) {
  const ScenarioConfig config = small_scenario();
  const OracleResult result = offline_energy_bound(config);
  const auto endpoints = build_endpoints(config);
  std::vector<double> durations;
  for (const auto& endpoint : endpoints) {
    durations.push_back(endpoint.session.total_playback_s());
  }
  const double avg = result.avg_energy_per_user_slot_mj(durations);
  EXPECT_GT(avg, 0.0);
  EXPECT_LT(avg, 2000.0);
  EXPECT_THROW((void)result.avg_energy_per_user_slot_mj({1.0}), Error);
}

TEST(Oracle, RejectsBadSpec) {
  OracleSpec spec;
  spec.startup_slots = -1;
  EXPECT_THROW((void)offline_energy_bound(small_scenario(), spec), Error);
}

}  // namespace
}  // namespace jstream
