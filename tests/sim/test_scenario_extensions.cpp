// Tests for the scenario features beyond the paper's static setting: session
// arrivals, VBR content, alternative signal processes, and capacity waves.
#include <gtest/gtest.h>

#include <algorithm>

#include "baselines/factory.hpp"
#include "common/error.hpp"
#include "common/stats.hpp"
#include "sim/scenario.hpp"
#include "sim/simulator.hpp"

namespace jstream {
namespace {

ScenarioConfig small_scenario(std::uint64_t seed = 3) {
  ScenarioConfig config = paper_scenario(6, seed);
  config.video_min_mb = 5.0;
  config.video_max_mb = 10.0;
  config.max_slots = 2500;
  return config;
}

TEST(ScenarioArrivals, SpreadProducesDistinctStartSlots) {
  ScenarioConfig config = small_scenario();
  config.users = 20;
  config.arrival_spread_slots = 500;
  const auto endpoints = build_endpoints(config);
  std::int64_t min_start = config.max_slots;
  std::int64_t max_start = 0;
  for (const auto& endpoint : endpoints) {
    EXPECT_GE(endpoint.start_slot, 0);
    EXPECT_LE(endpoint.start_slot, 500);
    min_start = std::min(min_start, endpoint.start_slot);
    max_start = std::max(max_start, endpoint.start_slot);
  }
  EXPECT_LT(min_start, max_start);  // actually staggered
}

TEST(ScenarioArrivals, ZeroSpreadStartsEveryoneAtSlotZero) {
  const auto endpoints = build_endpoints(small_scenario());
  for (const auto& endpoint : endpoints) EXPECT_EQ(endpoint.start_slot, 0);
}

TEST(ScenarioArrivals, UnarrivedUsersNeitherServeNorStall) {
  ScenarioConfig config = small_scenario();
  config.arrival_spread_slots = 200;
  const RunMetrics metrics = simulate(config, make_scheduler("default"));
  const auto endpoints = build_endpoints(config);
  EXPECT_DOUBLE_EQ(metrics.completion_rate(), 1.0);
  for (std::size_t i = 0; i < endpoints.size(); ++i) {
    // Session slots cannot start before arrival: the whole session fits in
    // slots_run - start_slot.
    EXPECT_LE(metrics.per_user[i].session_slots,
              metrics.slots_run - endpoints[i].start_slot);
    EXPECT_NEAR(metrics.per_user[i].delivered_kb, endpoints[i].session.size_kb(), 1e-6);
  }
}

TEST(ScenarioArrivals, LateArrivalsExtendTheRun) {
  ScenarioConfig together = small_scenario(9);
  ScenarioConfig spread = small_scenario(9);
  spread.arrival_spread_slots = 400;
  const RunMetrics a = simulate(together, make_scheduler("default"));
  const RunMetrics b = simulate(spread, make_scheduler("default"));
  EXPECT_GT(b.slots_run, a.slots_run);
}

TEST(ScenarioVbr, SessionsUseRandomWalkRates) {
  ScenarioConfig config = small_scenario();
  config.vbr = true;
  config.vbr_hold_slots = 10;
  const auto endpoints = build_endpoints(config);
  bool any_varies = false;
  for (const auto& endpoint : endpoints) {
    const double first = endpoint.session.bitrate_kbps(0);
    for (std::int64_t slot = 10; slot < 200; slot += 10) {
      EXPECT_GE(endpoint.session.bitrate_kbps(slot), config.bitrate_min_kbps);
      EXPECT_LE(endpoint.session.bitrate_kbps(slot), config.bitrate_max_kbps);
      if (std::abs(endpoint.session.bitrate_kbps(slot) - first) > 1.0) {
        any_varies = true;
      }
    }
  }
  EXPECT_TRUE(any_varies);
}

TEST(ScenarioVbr, SimulationCompletesUnderVbr) {
  ScenarioConfig config = small_scenario();
  config.vbr = true;
  for (const char* name : {"default", "rtma", "ema-fast"}) {
    const RunMetrics metrics = simulate(config, make_scheduler(name));
    EXPECT_DOUBLE_EQ(metrics.completion_rate(), 1.0) << name;
  }
}

TEST(ScenarioSignalKinds, GaussMarkovEndpointsRun) {
  ScenarioConfig config = small_scenario();
  config.signal_kind = SignalKind::kGaussMarkov;
  const RunMetrics metrics = simulate(config, make_scheduler("default"));
  EXPECT_DOUBLE_EQ(metrics.completion_rate(), 1.0);
}

TEST(ScenarioSignalKinds, TraceEndpointsReplayWithOffsets) {
  ScenarioConfig config = small_scenario();
  config.signal_kind = SignalKind::kTrace;
  config.trace_dbm = {-60.0, -70.0, -80.0, -90.0, -100.0};
  const auto endpoints = build_endpoints(config);
  // Each user replays the same ring, so per-slot values come from the trace.
  for (const auto& endpoint : endpoints) {
    const double v = endpoint.signal->signal_dbm(0);
    EXPECT_TRUE(std::find(config.trace_dbm.begin(), config.trace_dbm.end(), v) !=
                config.trace_dbm.end());
  }
  const RunMetrics metrics = simulate(config, make_scheduler("default"));
  EXPECT_DOUBLE_EQ(metrics.completion_rate(), 1.0);
}

TEST(ScenarioSignalKinds, TraceKindRequiresATrace) {
  ScenarioConfig config = small_scenario();
  config.signal_kind = SignalKind::kTrace;
  EXPECT_THROW(validate(config), Error);
}

TEST(ScenarioCapacity, SineWaveOscillatesAroundBase) {
  ScenarioConfig config = small_scenario();
  config.capacity_kind = CapacityKind::kSine;
  config.capacity_wave_fraction = 0.5;
  config.capacity_wave_period = 100.0;
  const auto profile = capacity_profile(config);
  EXPECT_NEAR(profile(0), config.capacity_kbps, 1e-9);
  EXPECT_NEAR(profile(25), config.capacity_kbps * 1.5, 1e-6);
  EXPECT_NEAR(profile(75), config.capacity_kbps * 0.5, 1e-6);
}

TEST(ScenarioCapacity, ConstantProfileByDefault) {
  const auto profile = capacity_profile(small_scenario());
  EXPECT_DOUBLE_EQ(profile(0), profile(12345));
}

TEST(ScenarioCapacity, WaveModulatesPerSlotService) {
  // With a binding base capacity, a capacity wave must show up as extra
  // variance in the per-slot energy (service) series. Rebuffering totals are
  // NOT a robust signal here: unbounded client buffers let crest-time
  // prefetch offset trough-time droughts.
  ScenarioConfig steady = small_scenario(21);
  steady.users = 8;
  steady.capacity_kbps = 4000.0;
  ScenarioConfig wavy = steady;
  wavy.capacity_kind = CapacityKind::kSine;
  wavy.capacity_wave_fraction = 0.8;
  wavy.capacity_wave_period = 120.0;
  const RunMetrics a = simulate(steady, make_scheduler("default"));
  const RunMetrics b = simulate(wavy, make_scheduler("default"));
  const Summary steady_energy = summarize(a.slot_energy_mj);
  const Summary wavy_energy = summarize(b.slot_energy_mj);
  EXPECT_GT(wavy_energy.stddev, steady_energy.stddev);
}

TEST(ScenarioValidation, CatchesNewFieldErrors) {
  ScenarioConfig config = small_scenario();
  config.arrival_spread_slots = -1;
  EXPECT_THROW(validate(config), Error);
  config = small_scenario();
  config.arrival_spread_slots = config.max_slots;
  EXPECT_THROW(validate(config), Error);
  config = small_scenario();
  config.vbr = true;
  config.vbr_hold_slots = 0;
  EXPECT_THROW(validate(config), Error);
  config = small_scenario();
  config.capacity_kind = CapacityKind::kSine;
  config.capacity_wave_fraction = 1.5;
  EXPECT_THROW(validate(config), Error);
}

}  // namespace
}  // namespace jstream
