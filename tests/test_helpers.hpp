// Shared fixtures for gateway/core/baseline tests: small deterministic user
// populations with constant channels so expected values can be computed by
// hand.
#pragma once

#include <algorithm>
#include <cmath>
#include <memory>
#include <vector>

#include "gateway/info_collector.hpp"
#include "gateway/user_endpoint.hpp"
#include "net/base_station.hpp"
#include "radio/link_model.hpp"
#include "radio/radio_profile.hpp"
#include "common/units.hpp"

namespace jstream::testing {

/// One user with a constant signal and constant-bitrate session.
inline UserEndpoint make_endpoint(double signal_dbm, double bitrate_kbps,
                                  double size_kb, double tau_s = 1.0,
                                  RadioProfile radio = paper_3g_profile()) {
  return UserEndpoint(std::make_unique<ConstantSignalModel>(signal_dbm),
                      VideoSession(size_kb, std::make_shared<ConstantBitrate>(bitrate_kbps),
                                   tau_s),
                      radio, tau_s);
}

/// A population of identical users at distinct signal levels.
inline std::vector<UserEndpoint> make_endpoints(
    const std::vector<double>& signals_dbm, double bitrate_kbps = 400.0,
    double size_kb = 50000.0, RadioProfile radio = paper_3g_profile()) {
  std::vector<UserEndpoint> endpoints;
  endpoints.reserve(signals_dbm.size());
  for (double sig : signals_dbm) {
    endpoints.push_back(make_endpoint(sig, bitrate_kbps, size_kb, 1.0, radio));
  }
  return endpoints;
}

/// Collector with the paper link model and 3G profile.
inline InfoCollector make_collector(SlotParams params = SlotParams{},
                                    RadioProfile radio = paper_3g_profile()) {
  return InfoCollector(params, make_paper_link_model(), radio);
}

/// Lightweight per-user description for building synthetic SlotContexts.
struct TestUser {
  double signal_dbm = -80.0;
  double bitrate_kbps = 400.0;
  double remaining_kb = 1e6;
  double buffer_s = 0.0;
  double rrc_idle_s = 0.0;
  bool rrc_promoted = false;
  double elapsed_play_s = 0.0;
  double total_play_s = 1000.0;
};

/// Builds a scheduler-ready snapshot without running a simulation. The link
/// model and radio profile are process-lifetime statics (SlotContext holds
/// raw pointers).
inline SlotContext make_context(const std::vector<TestUser>& users,
                                double capacity_kbps = 20000.0,
                                SlotParams params = SlotParams{},
                                std::int64_t slot = 0) {
  static const LinkModel link = make_paper_link_model();
  static const RadioProfile radio = paper_3g_profile();
  SlotContext ctx;
  ctx.slot = slot;
  ctx.params = params;
  ctx.capacity_units = params.capacity_units(capacity_kbps);
  ctx.throughput = link.throughput.get();
  ctx.power = link.power.get();
  ctx.radio = &radio;
  for (const TestUser& user : users) {
    UserSlotInfo info;
    info.signal_dbm = user.signal_dbm;
    info.bitrate_kbps = user.bitrate_kbps;
    info.throughput_kbps = link.throughput->throughput_kbps(user.signal_dbm);
    info.energy_per_kb = link.power->energy_per_kb(user.signal_dbm);
    info.remaining_kb = user.remaining_kb;
    info.needs_data = user.remaining_kb > 0.0;
    info.link_units = params.link_units(info.throughput_kbps);
    const auto remaining_units =
        ceil_to_count(user.remaining_kb / params.delta_kb);
    info.alloc_cap_units =
        std::max<std::int64_t>(0, std::min(info.link_units, remaining_units));
    info.buffer_s = user.buffer_s;
    info.elapsed_play_s = user.elapsed_play_s;
    info.total_play_s = user.total_play_s;
    info.rrc_idle_s = user.rrc_idle_s;
    info.rrc_promoted = user.rrc_promoted;
    ctx.users.push_back(info);
  }
  ctx.finalize();
  return ctx;
}

}  // namespace jstream::testing
