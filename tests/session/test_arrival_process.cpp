// Arrival-process contract: deterministic, seed-pure, order-independent
// counts; the content stream indexed by global arrival order (the purity
// contract of docs/SERVICE.md); fingerprints that isolate campaign cells.
#include <gtest/gtest.h>

#include <vector>

#include "common/error.hpp"
#include "session/arrival.hpp"
#include "common/units.hpp"

namespace jstream {
namespace {

ArrivalConfig poisson_config(double rate, std::uint64_t salt = 0) {
  ArrivalConfig config;
  config.kind = ArrivalKind::kPoisson;
  config.rate_per_slot = rate;
  config.salt = salt;
  return config;
}

TEST(ArrivalProcess, PoissonCountsAreDeterministicAndOrderIndependent) {
  const ArrivalConfig config = poisson_config(0.7);
  const auto a = make_arrival_process(config, /*seed=*/99);
  const auto b = make_arrival_process(config, /*seed=*/99);

  // Query b backwards and with repeats: pure per-slot streams must agree.
  std::vector<std::int64_t> forward;
  for (std::int64_t slot = 0; slot < 200; ++slot) {
    forward.push_back(a->arrivals_at(slot));
  }
  for (std::int64_t slot = 199; slot >= 0; --slot) {
    EXPECT_EQ(b->arrivals_at(slot), forward[checked_size(slot)]);
    EXPECT_EQ(b->arrivals_at(slot), forward[checked_size(slot)]);
  }
}

TEST(ArrivalProcess, PoissonMeanTracksTheConfiguredRate) {
  const double rate = 1.5;
  const auto process = make_arrival_process(poisson_config(rate), 7);
  std::int64_t total = 0;
  const std::int64_t slots = 20000;
  for (std::int64_t slot = 0; slot < slots; ++slot) {
    const std::int64_t count = process->arrivals_at(slot);
    ASSERT_GE(count, 0);
    total += count;
  }
  const double mean = as_double(total) / as_double(slots);
  EXPECT_NEAR(mean, rate, 0.05);
}

TEST(ArrivalProcess, SeedAndSaltDecorrelateStreams) {
  const auto base = make_arrival_process(poisson_config(1.0), 1);
  const auto other_seed = make_arrival_process(poisson_config(1.0), 2);
  const auto other_salt = make_arrival_process(poisson_config(1.0, /*salt=*/5), 1);
  int seed_diffs = 0;
  int salt_diffs = 0;
  for (std::int64_t slot = 0; slot < 500; ++slot) {
    if (base->arrivals_at(slot) != other_seed->arrivals_at(slot)) ++seed_diffs;
    if (base->arrivals_at(slot) != other_salt->arrivals_at(slot)) ++salt_diffs;
  }
  EXPECT_GT(seed_diffs, 0);
  EXPECT_GT(salt_diffs, 0);
}

TEST(ArrivalProcess, TraceReplaysCountsAndGoesQuietBeyond) {
  ArrivalConfig config;
  config.kind = ArrivalKind::kTrace;
  config.trace_counts = {2, 0, 1, 3};
  const auto process = make_arrival_process(config, 42);
  EXPECT_EQ(process->name(), "trace");
  EXPECT_EQ(process->arrivals_at(0), 2);
  EXPECT_EQ(process->arrivals_at(1), 0);
  EXPECT_EQ(process->arrivals_at(2), 1);
  EXPECT_EQ(process->arrivals_at(3), 3);
  EXPECT_EQ(process->arrivals_at(4), 0);
  EXPECT_EQ(process->arrivals_at(1000), 0);
}

TEST(ArrivalProcess, ValidateRejectsNonsense) {
  ArrivalConfig negative_rate = poisson_config(-0.1);
  EXPECT_THROW(validate(negative_rate), Error);

  ArrivalConfig negative_trace;
  negative_trace.kind = ArrivalKind::kTrace;
  negative_trace.trace_counts = {1, -1};
  EXPECT_THROW(validate(negative_trace), Error);

  EXPECT_NO_THROW(validate(ArrivalConfig{}));
  EXPECT_NO_THROW(validate(poisson_config(0.0)));
}

TEST(ArrivalProcess, FingerprintIsZeroOnlyWhenInactive) {
  EXPECT_EQ(arrival_fingerprint(ArrivalConfig{}), 0u);
  const std::uint64_t low = arrival_fingerprint(poisson_config(0.1));
  const std::uint64_t high = arrival_fingerprint(poisson_config(0.4));
  const std::uint64_t salted = arrival_fingerprint(poisson_config(0.1, 3));
  EXPECT_NE(low, 0u);
  EXPECT_NE(low, high);
  EXPECT_NE(low, salted);
  EXPECT_EQ(low, arrival_fingerprint(poisson_config(0.1)));
}

TEST(ArrivalProcess, InactiveConfigBuildsNoProcess) {
  EXPECT_EQ(make_arrival_process(ArrivalConfig{}, 42), nullptr);
}

TEST(ArrivalProcess, SessionContentIsPureInTheArrivalIndex) {
  ScenarioConfig cell = paper_scenario(4, 2026);
  cell.video_min_mb = 2.0;
  cell.video_max_mb = 4.0;

  // Drawing k = 7 cold must equal drawing it after a pass over 0..9 — the
  // purity that keeps admission-policy changes from shifting later sessions.
  const VideoSession cold = draw_session_content(cell, 0, 7);
  for (std::int64_t k = 0; k < 10; ++k) {
    (void)draw_session_content(cell, 0, k);
  }
  const VideoSession warm = draw_session_content(cell, 0, 7);
  EXPECT_EQ(cold.size_kb(), warm.size_kb());
  EXPECT_EQ(cold.bitrate_at_time(0.0), warm.bitrate_at_time(0.0));
}

TEST(ArrivalProcess, SessionContentStaysInsideTheConfiguredRanges) {
  ScenarioConfig cell = paper_scenario(4, 11);
  cell.video_min_mb = 2.0;
  cell.video_max_mb = 4.0;
  bool any_distinct = false;
  double first_size = -1.0;
  for (std::int64_t k = 0; k < 64; ++k) {
    const VideoSession session = draw_session_content(cell, 0, k);
    EXPECT_GE(session.size_kb(), 2000.0);
    EXPECT_LE(session.size_kb(), 4000.0);
    const double bitrate = session.bitrate_at_time(0.0);
    EXPECT_GE(bitrate, cell.bitrate_min_kbps);
    EXPECT_LE(bitrate, cell.bitrate_max_kbps);
    if (first_size < 0.0) {
      first_size = session.size_kb();
    } else if (session.size_kb() != first_size) {
      any_distinct = true;
    }
  }
  EXPECT_TRUE(any_distinct);
}

TEST(ArrivalProcess, PoissonSamplerHandlesEdgeIntensities) {
  Rng rng(1);
  EXPECT_EQ(poisson_sample(rng, 0.0), 0);
  // Large intensities go through the chunked path; the sample must stay close
  // to the mean (within 6 sigma, sigma = sqrt(lambda)).
  double sum = 0.0;
  for (int i = 0; i < 50; ++i) {
    const auto sample = poisson_sample(rng, 400.0);
    EXPECT_GT(sample, 280);
    EXPECT_LT(sample, 520);
    sum += as_double(sample);
  }
  EXPECT_NEAR(sum / 50.0, 400.0, 20.0);
}

}  // namespace
}  // namespace jstream
