// SessionManager: stable-id recycling over a fixed population, bind/release
// bookkeeping, the tail-drain window for completed sessions, and the shared
// departure path for aborts.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/error.hpp"
#include "media/bitrate_profile.hpp"
#include "session/session_manager.hpp"

namespace jstream {
namespace {

constexpr std::int64_t kTailFlush = 3;

ScenarioConfig small_cell() {
  ScenarioConfig cell = paper_scenario(/*users=*/4, /*seed=*/123);
  cell.max_slots = 200;
  return cell;
}

VideoSession make_session(double size_kb = 5000.0, double bitrate = 400.0) {
  return VideoSession(size_kb, std::make_shared<ConstantBitrate>(bitrate), 1.0);
}

/// Rewrites a bound endpoint to look completed: nothing left to deliver and
/// playback done (a sub-epsilon buffer is finished by construction).
void force_completion(UserEndpoint& endpoint) {
  endpoint.delivered_kb = endpoint.session.size_kb();
  endpoint.buffer = PlaybackBuffer(kPlaybackCompletionEps_s / 2.0, 1.0);
}

TEST(SessionManager, StartsWithEverySlotFreeAndParkedDeparted) {
  SessionManager manager(small_cell(), kTailFlush);
  EXPECT_EQ(manager.capacity(), 4u);
  EXPECT_EQ(manager.active_sessions(), 0u);
  EXPECT_TRUE(manager.has_free_slot());
  EXPECT_EQ(manager.mean_active_bitrate_kbps(), 0.0);
  for (std::size_t id = 0; id < manager.capacity(); ++id) {
    EXPECT_FALSE(manager.occupied(id));
    // Parked free slots read as departed from slot 0 on — zero demand for
    // the collector, gone for the invariant checker.
    EXPECT_TRUE(manager.endpoints()[id].departed(0));
  }
}

TEST(SessionManager, BindRecyclesLowIdsFirstAndStampsTheEndpoint) {
  SessionManager manager(small_cell(), kTailFlush);
  EXPECT_EQ(manager.peek_free(), 0u);
  const std::int32_t epoch_before = manager.endpoints()[0].session_epoch;

  const std::size_t id =
      manager.bind(/*slot=*/10, make_session(5000.0, 450.0), UserEndpoint::kNeverSlot);
  EXPECT_EQ(id, 0u);
  EXPECT_TRUE(manager.occupied(0));
  EXPECT_EQ(manager.active_sessions(), 1u);
  EXPECT_EQ(manager.peek_free(), 1u);
  EXPECT_DOUBLE_EQ(manager.mean_active_bitrate_kbps(), 450.0);

  const UserEndpoint& endpoint = manager.endpoints()[0];
  EXPECT_EQ(endpoint.start_slot, 10);
  EXPECT_EQ(endpoint.session_epoch, epoch_before + 1);
  EXPECT_EQ(endpoint.delivered_kb, 0.0);
  EXPECT_TRUE(endpoint.arrived(10));
  EXPECT_FALSE(endpoint.departed(10));
  EXPECT_TRUE(endpoint.active());
  EXPECT_DOUBLE_EQ(endpoint.session.size_kb(), 5000.0);
}

TEST(SessionManager, BindRequiresAFutureDeparture) {
  SessionManager manager(small_cell(), kTailFlush);
  EXPECT_THROW(manager.bind(10, make_session(), /*departure_slot=*/10), Error);
  EXPECT_THROW(manager.bind(10, make_session(), /*departure_slot=*/5), Error);
  EXPECT_NO_THROW(manager.bind(10, make_session(), /*departure_slot=*/11));
}

TEST(SessionManager, AbortReleasesAtTheDepartureSlot) {
  SessionManager manager(small_cell(), kTailFlush);
  const std::size_t id = manager.bind(0, make_session(), /*departure_slot=*/25);

  std::vector<std::int64_t> ends;
  for (std::int64_t slot = 0; slot < 25; ++slot) {
    manager.scan_releases(slot, [&](std::size_t, std::int64_t end, bool) {
      ends.push_back(end);
    });
  }
  EXPECT_TRUE(ends.empty());
  EXPECT_EQ(manager.active_sessions(), 1u);

  bool completed = true;
  manager.scan_releases(25, [&](std::size_t released, std::int64_t end, bool done) {
    EXPECT_EQ(released, id);
    ends.push_back(end);
    completed = done;
  });
  ASSERT_EQ(ends.size(), 1u);
  EXPECT_EQ(ends[0], 25);
  EXPECT_FALSE(completed);
  EXPECT_EQ(manager.active_sessions(), 0u);
  EXPECT_FALSE(manager.occupied(id));
  EXPECT_EQ(manager.mean_active_bitrate_kbps(), 0.0);
}

TEST(SessionManager, CompletionWaitsOutTheTailDrainWindow) {
  SessionManager manager(small_cell(), kTailFlush);
  const std::size_t id = manager.bind(0, make_session(), UserEndpoint::kNeverSlot);
  force_completion(manager.endpoints()[id]);

  // Slot 10 notices the finished session and opens the drain window; the
  // session stays bound (and charged for its RRC tail) until it elapses.
  int releases = 0;
  for (std::int64_t slot = 10; slot < 10 + kTailFlush; ++slot) {
    manager.scan_releases(slot, [&](std::size_t, std::int64_t, bool) { ++releases; });
    EXPECT_EQ(releases, 0) << "released during the drain window at slot " << slot;
    EXPECT_EQ(manager.active_sessions(), 1u);
  }
  bool completed = false;
  std::int64_t end = -1;
  manager.scan_releases(10 + kTailFlush, [&](std::size_t, std::int64_t e, bool done) {
    ++releases;
    completed = done;
    end = e;
  });
  EXPECT_EQ(releases, 1);
  EXPECT_TRUE(completed);
  EXPECT_EQ(end, 10 + kTailFlush);
  EXPECT_EQ(manager.active_sessions(), 0u);
  // The freed slot parks as departed again.
  EXPECT_TRUE(manager.endpoints()[id].departed(10 + kTailFlush));
}

TEST(SessionManager, ReleasedSlotsAreReboundWithAFreshEpoch) {
  SessionManager manager(small_cell(), kTailFlush);
  const std::size_t id = manager.bind(0, make_session(), /*departure_slot=*/5);
  const std::int32_t first_epoch = manager.endpoints()[id].session_epoch;
  manager.scan_releases(5, [](std::size_t, std::int64_t, bool) {});
  ASSERT_FALSE(manager.occupied(id));

  // The freed id is handed out again (low ids first) with a bumped epoch so
  // the invariant checker resynchronizes its per-slot state.
  EXPECT_EQ(manager.peek_free(), id);
  const std::size_t again = manager.bind(6, make_session(), UserEndpoint::kNeverSlot);
  EXPECT_EQ(again, id);
  EXPECT_EQ(manager.endpoints()[id].session_epoch, first_epoch + 1);
  EXPECT_EQ(manager.endpoints()[id].start_slot, 6);
  EXPECT_FALSE(manager.endpoints()[id].departed(6));
}

TEST(SessionManager, FillsToCapacityAndTracksMeanBitrate) {
  SessionManager manager(small_cell(), kTailFlush);
  const double bitrates[] = {300.0, 400.0, 500.0, 600.0};
  for (double bitrate : bitrates) {
    manager.bind(0, make_session(5000.0, bitrate), UserEndpoint::kNeverSlot);
  }
  EXPECT_FALSE(manager.has_free_slot());
  EXPECT_EQ(manager.active_sessions(), 4u);
  EXPECT_DOUBLE_EQ(manager.mean_active_bitrate_kbps(), 450.0);
  EXPECT_THROW(manager.bind(0, make_session(), UserEndpoint::kNeverSlot), Error);
}

}  // namespace
}  // namespace jstream
