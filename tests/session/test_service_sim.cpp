// ServiceSimulator end to end: flow conservation, determinism, warmup
// accounting, batch delegation with arrivals off, and admission effects.
#include <gtest/gtest.h>

#include <vector>

#include "analysis/invariant_checker.hpp"
#include "baselines/factory.hpp"
#include "common/error.hpp"
#include "session/service.hpp"
#include "common/units.hpp"

namespace jstream {
namespace {

ScenarioConfig service_cell(std::size_t users = 6, std::uint64_t seed = 321) {
  ScenarioConfig cell = paper_scenario(users, seed);
  cell.max_slots = 250;
  cell.video_min_mb = 2.0;
  cell.video_max_mb = 4.0;
  return cell;
}

ServiceConfig poisson_service(double rate, std::int64_t warmup = 0) {
  ServiceConfig config;
  config.cell = service_cell();
  config.arrivals.kind = ArrivalKind::kPoisson;
  config.arrivals.rate_per_slot = rate;
  config.warmup_slots = warmup;
  return config;
}

TEST(ServiceSimulator, SessionFlowIsConserved) {
  const ServiceConfig config = poisson_service(0.15);
  const ServiceResult result = simulate_service(config, make_scheduler("default"));
  const ServiceMetrics& m = result.service;

  // Offered arrivals match the pure arrival process, independently queried.
  const auto arrivals = make_arrival_process(config.arrivals, config.cell.seed);
  std::int64_t expected_offered = 0;
  for (std::int64_t slot = 0; slot < config.cell.max_slots; ++slot) {
    expected_offered += arrivals->arrivals_at(slot);
  }
  EXPECT_EQ(m.offered, expected_offered);
  EXPECT_GT(m.offered, 0);

  // Every offer is admitted, rejected, or blocked; every admission ends or
  // is still in flight at the horizon.
  EXPECT_EQ(m.admitted + m.rejected + m.blocked, m.offered);
  EXPECT_EQ(m.completed + m.aborted + m.in_flight_at_end, m.admitted);
  EXPECT_GT(m.completed, 0);
  EXPECT_EQ(m.slots_run, config.cell.max_slots);
  EXPECT_LE(m.peak_concurrency, m.capacity_slots);
}

TEST(ServiceSimulator, RunsAreDeterministic) {
  const ServiceConfig config = poisson_service(0.2, /*warmup=*/50);
  const ServiceResult a = simulate_service(config, make_scheduler("default"));
  const ServiceResult b = simulate_service(config, make_scheduler("default"));
  EXPECT_EQ(a.service.offered, b.service.offered);
  EXPECT_EQ(a.service.admitted, b.service.admitted);
  EXPECT_EQ(a.service.completed, b.service.completed);
  EXPECT_EQ(a.service.aborted, b.service.aborted);
  EXPECT_EQ(a.service.concurrency_sum, b.service.concurrency_sum);
  EXPECT_EQ(a.service.rebuffer_sum_s, b.service.rebuffer_sum_s);
  EXPECT_EQ(a.service.energy_sum_mj, b.service.energy_sum_mj);
  EXPECT_EQ(a.service.session_rebuffer_sum_s, b.service.session_rebuffer_sum_s);
  EXPECT_EQ(a.run.total_energy_mj(), b.run.total_energy_mj());
  EXPECT_EQ(a.run.total_rebuffer_s(), b.run.total_rebuffer_s());
}

TEST(ServiceSimulator, WarmupWindowIsExcludedFromSteadyStateAverages) {
  const std::int64_t warmup = 100;
  const ServiceConfig config = poisson_service(0.2, warmup);
  const ServiceResult result = simulate_service(config, make_scheduler("default"));
  EXPECT_EQ(result.service.measured_slots, config.cell.max_slots - warmup);

  // The same run with no warmup measures strictly more user-slots (the fill
  // transient now counts).
  const ServiceConfig no_warmup = poisson_service(0.2, 0);
  const ServiceResult all = simulate_service(no_warmup, make_scheduler("default"));
  EXPECT_EQ(all.service.measured_slots, config.cell.max_slots);
  EXPECT_GT(all.service.active_user_slots, result.service.active_user_slots);
  // The flow counters are warmup-independent.
  EXPECT_EQ(all.service.offered, result.service.offered);
  EXPECT_EQ(all.service.completed, result.service.completed);
}

TEST(ServiceSimulator, ZeroArrivalConfigReproducesTheBatchRunBitForBit) {
  ServiceConfig config;
  config.cell = service_cell();
  const ServiceResult service = simulate_service(config, make_scheduler("ema"));
  const RunMetrics batch = simulate(config.cell, make_scheduler("ema"), false);

  ASSERT_EQ(service.run.per_user.size(), batch.per_user.size());
  EXPECT_EQ(service.run.slots_run, batch.slots_run);
  for (std::size_t i = 0; i < batch.per_user.size(); ++i) {
    EXPECT_EQ(service.run.per_user[i].trans_mj, batch.per_user[i].trans_mj) << i;
    EXPECT_EQ(service.run.per_user[i].tail_mj, batch.per_user[i].tail_mj) << i;
    EXPECT_EQ(service.run.per_user[i].rebuffer_s, batch.per_user[i].rebuffer_s) << i;
    EXPECT_EQ(service.run.per_user[i].delivered_kb, batch.per_user[i].delivered_kb)
        << i;
    EXPECT_EQ(service.run.per_user[i].session_slots, batch.per_user[i].session_slots)
        << i;
  }
  // The derived session view: every user one admitted session.
  EXPECT_EQ(service.service.offered, checked_index(config.cell.users));
  EXPECT_EQ(service.service.admitted, service.service.offered);
  EXPECT_EQ(service.service.completed +
                service.service.aborted + service.service.in_flight_at_end,
            service.service.admitted);
}

TEST(ServiceSimulator, ThresholdAdmissionRejectsUnderOverload) {
  ServiceConfig overload = poisson_service(0.8, /*warmup=*/25);
  overload.cell.capacity_kbps = 1500.0;  // ~3 sessions' worth
  ServiceConfig limited = overload;
  limited.admission.kind = AdmissionKind::kThreshold;
  limited.admission.threshold.capacity_headroom = 1.1;

  const ServiceResult open = simulate_service(overload, make_scheduler("default"));
  const ServiceResult gated = simulate_service(limited, make_scheduler("default"));

  // Same arrival stream (purity contract), different admission outcome.
  EXPECT_EQ(open.service.offered, gated.service.offered);
  EXPECT_EQ(open.service.rejected, 0);
  EXPECT_GT(gated.service.rejected, 0);
  EXPECT_LT(gated.service.admitted, open.service.admitted);
  EXPECT_LT(gated.service.mean_concurrency(), open.service.mean_concurrency());
  // The protected cell stalls less per served user-slot.
  EXPECT_LT(gated.service.mean_rebuffer_per_user_slot_s(),
            open.service.mean_rebuffer_per_user_slot_s());
}

TEST(ServiceSimulator, SessionRecordsCoverTheMeasuredSessions) {
  ServiceConfig config = poisson_service(0.2, /*warmup=*/40);
  config.keep_session_records = true;
  const ServiceResult result = simulate_service(config, make_scheduler("default"));
  const ServiceMetrics& m = result.service;
  ASSERT_EQ(checked_index(m.records.size()), m.sessions_measured);
  EXPECT_GT(m.sessions_measured, 0);
  for (const SessionRecord& record : m.records) {
    EXPECT_GE(record.start_slot, config.warmup_slots);
    EXPECT_GT(record.end_slot, record.start_slot);
    EXPECT_LE(record.end_slot, config.cell.max_slots);
    EXPECT_GE(record.arrival_index, 0);
    EXPECT_LT(record.user_slot, m.capacity_slots);
    EXPECT_GE(record.rebuffer_s, 0.0);
    EXPECT_GE(record.energy_mj, 0.0);
  }
}

TEST(ServiceSimulator, FaultDeparturesAbortServiceSessions) {
  ServiceConfig config = poisson_service(0.3);
  config.cell.faults.departure_fraction = 1.0;  // every population slot draws one
  const ServiceResult result = simulate_service(config, make_scheduler("default"));
  EXPECT_GT(result.service.aborted, 0);
  EXPECT_EQ(result.service.completed + result.service.aborted +
                result.service.in_flight_at_end,
            result.service.admitted);
}

TEST(ServiceSimulator, SlotPathHoldsThePaperInvariantsAcrossRebinds) {
  // The checker must accept mid-run population changes: epochs resync its
  // per-user queue and RRC baselines at every rebind.
  analysis::set_validation_enabled(true);
  const ServiceConfig config = poisson_service(0.25, /*warmup=*/20);
  EXPECT_NO_THROW({
    const ServiceResult result = simulate_service(config, make_scheduler("ema"));
    EXPECT_GT(result.service.completed, 0);
  });
  analysis::set_validation_enabled(false);
}

TEST(ServiceSimulator, ValidateRejectsIllFormedConfigs) {
  ServiceConfig config = poisson_service(0.1);
  config.warmup_slots = config.cell.max_slots;  // nothing left to measure
  EXPECT_THROW(validate(config), Error);
  config.warmup_slots = -1;
  EXPECT_THROW(validate(config), Error);
  config.warmup_slots = 0;
  EXPECT_NO_THROW(validate(config));

  // Fingerprint: zero iff arrivals are inactive.
  EXPECT_NE(service_fingerprint(config), 0u);
  ServiceConfig batch;
  batch.cell = service_cell();
  EXPECT_EQ(service_fingerprint(batch), 0u);
}

TEST(ServiceSimulator, StepApiExposesLiveState) {
  const ServiceConfig config = poisson_service(0.5);
  ServiceSimulator simulator(config, make_scheduler("default"));
  EXPECT_EQ(simulator.slot(), 0);
  while (simulator.slot() < 50 && simulator.step()) {
  }
  EXPECT_EQ(simulator.slot(), 50);
  EXPECT_GT(simulator.active_sessions(), 0u);
  while (simulator.step()) {
  }
  const ServiceResult result = simulator.finish();
  EXPECT_EQ(result.service.slots_run, config.cell.max_slots);
}

}  // namespace
}  // namespace jstream
