// Admission controllers: the accept-all baseline and the capacity/backlog
// threshold policy as pure functions of the per-arrival snapshot.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "session/admission.hpp"

namespace jstream {
namespace {

AdmissionSnapshot snapshot(std::size_t active, double mean_bitrate,
                           double capacity, double mean_queue = 0.0,
                           double offered_bitrate = 400.0) {
  AdmissionSnapshot s;
  s.active_sessions = active;
  s.capacity_slots = 100;
  s.cell_capacity_kbps = capacity;
  s.mean_bitrate_kbps = mean_bitrate;
  s.mean_virtual_queue_s = mean_queue;
  s.offered_bitrate_kbps = offered_bitrate;
  return s;
}

TEST(Admission, AcceptAllAdmitsEverything) {
  const auto controller = make_accept_all_admission();
  EXPECT_EQ(controller->name(), "accept-all");
  EXPECT_TRUE(controller->admit(snapshot(0, 0.0, 1.0)));
  EXPECT_TRUE(controller->admit(snapshot(99, 5000.0, 1.0, 1e9)));
}

TEST(Admission, ThresholdAdmitsWhileCapacityHolds) {
  ThresholdAdmissionConfig config;
  config.capacity_headroom = 1.0;
  config.max_mean_queue_s = 1e9;
  const auto controller = make_threshold_admission(config);
  EXPECT_EQ(controller->name(), "threshold");

  // Idle cell, one 400 KB/s arrival against 20 MB/s: trivially admitted.
  EXPECT_TRUE(controller->admit(snapshot(0, 0.0, 20000.0)));
  // 10 active at 400 + this arrival = 4400 total demand; fits 20000.
  EXPECT_TRUE(controller->admit(snapshot(10, 400.0, 20000.0)));
  // 49 active at 400 + arrival = 20000 exactly: not above the bound, admit.
  EXPECT_TRUE(controller->admit(snapshot(49, 400.0, 20000.0)));
  // 50 active: total 20400 > 20000, reject.
  EXPECT_FALSE(controller->admit(snapshot(50, 400.0, 20000.0)));
}

TEST(Admission, ThresholdHeadroomTightensTheBound) {
  ThresholdAdmissionConfig config;
  config.capacity_headroom = 2.0;
  const auto controller = make_threshold_admission(config);
  // 24 active at 400 + arrival = 10000 demand; x2 headroom = 20000, admit.
  EXPECT_TRUE(controller->admit(snapshot(24, 400.0, 20000.0)));
  // 25 active: 10400 x 2 = 20800 > 20000, reject — headroom halves capacity.
  EXPECT_FALSE(controller->admit(snapshot(25, 400.0, 20000.0)));
}

TEST(Admission, ThresholdRejectsOnBacklogPressure) {
  ThresholdAdmissionConfig config;
  config.capacity_headroom = 1.0;
  config.max_mean_queue_s = 10.0;
  const auto controller = make_threshold_admission(config);
  // Plenty of capacity, but the Eq. 16 queues are drowning: reject.
  EXPECT_TRUE(controller->admit(snapshot(2, 400.0, 20000.0, 10.0)));
  EXPECT_FALSE(controller->admit(snapshot(2, 400.0, 20000.0, 10.1)));
}

TEST(Admission, FactoryDispatchesOnKind) {
  AdmissionConfig accept;
  EXPECT_EQ(make_admission_controller(accept)->name(), "accept-all");
  AdmissionConfig threshold;
  threshold.kind = AdmissionKind::kThreshold;
  EXPECT_EQ(make_admission_controller(threshold)->name(), "threshold");
}

TEST(Admission, ValidateRejectsNonsense) {
  AdmissionConfig config;
  config.kind = AdmissionKind::kThreshold;
  config.threshold.capacity_headroom = 0.0;
  EXPECT_THROW(validate(config), Error);
  config.threshold.capacity_headroom = 1.1;
  config.threshold.max_mean_queue_s = -1.0;
  EXPECT_THROW(validate(config), Error);
  config.threshold.max_mean_queue_s = 0.0;
  EXPECT_NO_THROW(validate(config));
}

}  // namespace
}  // namespace jstream
