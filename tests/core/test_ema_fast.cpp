#include "core/ema_fast.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"
#include "test_helpers.hpp"
#include "common/units.hpp"

namespace jstream {
namespace {

using testing::TestUser;
using testing::make_context;

double total_cost(const EmaSlotCosts& costs, const Allocation& alloc) {
  double total = 0.0;
  for (std::size_t i = 0; i < alloc.units.size(); ++i) {
    total += ema_cost(costs, i, alloc.units[i]);
  }
  return total;
}

EmaSlotCosts random_costs(Rng& rng, std::size_t n) {
  EmaSlotCosts costs;
  for (std::size_t i = 0; i < n; ++i) {
    costs.idle_cost.push_back(rng.uniform(0.0, 40.0));
    costs.active_base.push_back(rng.uniform(0.0, 10.0));
    costs.slope.push_back(rng.uniform(-15.0, 15.0));
  }
  return costs;
}

TEST(EmaGreedy, FeasibleOnRandomInstances) {
  Rng rng(31);
  for (int trial = 0; trial < 100; ++trial) {
    const std::size_t n = 1 + checked_size(rng.uniform_int(0, 9));
    std::vector<std::int64_t> caps;
    for (std::size_t i = 0; i < n; ++i) caps.push_back(rng.uniform_int(0, 30));
    const std::int64_t capacity = rng.uniform_int(0, 80);
    const EmaSlotCosts costs = random_costs(rng, n);
    const Allocation alloc = solve_min_cost_greedy(costs, caps, capacity);
    EXPECT_LE(alloc.total_units(), capacity);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_GE(alloc.units[i], 0);
      EXPECT_LE(alloc.units[i], caps[i]);
    }
  }
}

TEST(EmaGreedy, NeverWorseThanAllIdle) {
  Rng rng(37);
  for (int trial = 0; trial < 100; ++trial) {
    const std::size_t n = 1 + checked_size(rng.uniform_int(0, 7));
    std::vector<std::int64_t> caps(n, 10);
    const EmaSlotCosts costs = random_costs(rng, n);
    const Allocation alloc = solve_min_cost_greedy(costs, caps, 40);
    double idle_total = 0.0;
    for (double idle : costs.idle_cost) idle_total += idle;
    EXPECT_LE(total_cost(costs, alloc), idle_total + 1e-9);
  }
}

TEST(EmaGreedy, CloseToDpObjectiveOnRandomInstances) {
  // The greedy is a documented heuristic; assert it lands within a small
  // additive margin of the exact DP across many random slot problems.
  Rng rng(41);
  double worst_gap = 0.0;
  double total_gap = 0.0;
  for (int trial = 0; trial < 300; ++trial) {
    const std::size_t n = 2 + checked_size(rng.uniform_int(0, 6));
    std::vector<std::int64_t> caps;
    for (std::size_t i = 0; i < n; ++i) caps.push_back(rng.uniform_int(0, 12));
    const std::int64_t capacity = rng.uniform_int(4, 40);
    const EmaSlotCosts costs = random_costs(rng, n);
    const double dp = total_cost(costs, solve_min_cost_dp(costs, caps, capacity));
    const double greedy =
        total_cost(costs, solve_min_cost_greedy(costs, caps, capacity));
    EXPECT_GE(greedy, dp - 1e-9);  // DP is optimal
    worst_gap = std::max(worst_gap, greedy - dp);
    total_gap += greedy - dp;
  }
  // Gaps stem from the activation jump under a binding budget; even on these
  // adversarial cost draws (idle costs up to 40, slopes +-15 — far harsher
  // than any real slot problem) the worst case must stay bounded and the
  // average small. End-to-end closeness is asserted separately in
  // PaperClaims.EmaFastTracksExactEmaClosely.
  EXPECT_LT(worst_gap, 80.0);
  EXPECT_LT(total_gap / 300.0, 5.0);
}

TEST(EmaGreedy, MatchesDpWhenBudgetIsLoose) {
  // Without a binding budget the per-user optimum is separable: the greedy's
  // {0, 1, cap} choice equals the DP's.
  Rng rng(43);
  for (int trial = 0; trial < 100; ++trial) {
    const std::size_t n = 1 + checked_size(rng.uniform_int(0, 5));
    std::vector<std::int64_t> caps;
    std::int64_t cap_sum = 0;
    for (std::size_t i = 0; i < n; ++i) {
      caps.push_back(rng.uniform_int(0, 8));
      cap_sum += caps.back();
    }
    const EmaSlotCosts costs = random_costs(rng, n);
    const double dp = total_cost(costs, solve_min_cost_dp(costs, caps, cap_sum));
    const double greedy = total_cost(costs, solve_min_cost_greedy(costs, caps, cap_sum));
    EXPECT_NEAR(greedy, dp, 1e-9);
  }
}

TEST(EmaFastScheduler, SameQueueDynamicsAsExact) {
  EmaFastScheduler fast(EmaConfig{0.05});
  EmaScheduler exact(EmaConfig{0.05});
  fast.reset(2);
  exact.reset(2);
  EXPECT_EQ(fast.name(), "ema-fast");
  const SlotContext ctx =
      make_context({TestUser{-70.0, 400.0}, TestUser{-100.0, 500.0}});
  const Allocation a = fast.allocate(ctx);
  const Allocation b = exact.allocate(ctx);
  // With an unconstrained budget both solvers pick the separable optimum and
  // the queues evolve identically.
  EXPECT_EQ(a.units, b.units);
  EXPECT_DOUBLE_EQ(fast.queues().value(0), exact.queues().value(0));
}

}  // namespace
}  // namespace jstream
