#include "core/rtma.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "core/energy_threshold.hpp"
#include "test_helpers.hpp"

namespace jstream {
namespace {

using testing::TestUser;
using testing::make_context;

TEST(Rtma, SatisfiesBothConstraints) {
  RtmaScheduler rtma;
  rtma.reset(3);
  const SlotContext ctx = make_context({TestUser{-60.0, 300.0}, TestUser{-80.0, 450.0},
                                        TestUser{-100.0, 600.0}});
  const Allocation alloc = rtma.allocate(ctx);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_GE(alloc.units[i], 0);
    EXPECT_LE(alloc.units[i], ctx.users[i].alloc_cap_units);
  }
  EXPECT_LE(alloc.total_units(), ctx.capacity_units);
}

TEST(Rtma, CoversEveryUsersNeedWhenCapacityAllows) {
  RtmaScheduler rtma;
  rtma.reset(3);
  const SlotContext ctx = make_context({TestUser{-60.0, 300.0}, TestUser{-70.0, 450.0},
                                        TestUser{-80.0, 600.0}});
  const Allocation alloc = rtma.allocate(ctx);
  // need = ceil(tau * p / delta): 3, 5, 6 units.
  EXPECT_GE(alloc.units[0], 3);
  EXPECT_GE(alloc.units[1], 5);
  EXPECT_GE(alloc.units[2], 6);
}

TEST(Rtma, ExhaustsCapacityViaMultiplePasses) {
  RtmaScheduler rtma;
  rtma.reset(2);
  // Two strong users; BS capacity 20 units binds first.
  const SlotContext ctx = make_context(
      {TestUser{-50.0, 300.0}, TestUser{-50.0, 300.0}}, /*capacity_kbps=*/2000.0);
  const Allocation alloc = rtma.allocate(ctx);
  EXPECT_EQ(alloc.total_units(), ctx.capacity_units);
}

TEST(Rtma, LowBitrateUsersServedFirstUnderScarcity) {
  RtmaScheduler rtma;
  rtma.reset(2);
  // Capacity of 3 units: exactly the low-rate user's need.
  const SlotContext ctx = make_context(
      {TestUser{-80.0, 600.0}, TestUser{-80.0, 300.0}}, /*capacity_kbps=*/300.0);
  const Allocation alloc = rtma.allocate(ctx);
  EXPECT_EQ(alloc.units[1], 3);  // 300 KB/s user gets its full need
  EXPECT_EQ(alloc.units[0], 0);
}

TEST(Rtma, EnergyBudgetFiltersWeakSignals) {
  RtmaConfig config;
  // Budget equal to the Eq. 12 cost at -85 dBm: users below -85 are skipped.
  // Pin P_tail on both sides so the threshold inversion is exact.
  const LinkModel link = make_paper_link_model();
  EnergyThresholdSpec spec;
  spec.tail_power_mw = 600.0;
  config.tail_power_mw = 600.0;
  config.energy_budget_mj =
      slot_energy_estimate_mj(spec, *link.throughput, *link.power, -85.0);
  RtmaScheduler rtma(config);
  rtma.reset(2);
  const SlotContext ctx =
      make_context({TestUser{-90.0, 400.0}, TestUser{-80.0, 400.0}});
  const Allocation alloc = rtma.allocate(ctx);
  EXPECT_EQ(alloc.units[0], 0);  // below threshold
  EXPECT_GT(alloc.units[1], 0);
  EXPECT_NEAR(rtma.last_threshold_dbm(), -85.0, 1e-6);
}

TEST(Rtma, UnbudgetedRunHasNoThreshold) {
  RtmaScheduler rtma;
  rtma.reset(1);
  const SlotContext ctx = make_context({TestUser{-110.0, 400.0}});
  const Allocation alloc = rtma.allocate(ctx);
  EXPECT_GT(alloc.units[0], 0);
  EXPECT_TRUE(std::isinf(rtma.last_threshold_dbm()));
}

TEST(Rtma, SkipsUsersWithNothingLeft) {
  RtmaScheduler rtma;
  rtma.reset(2);
  std::vector<TestUser> users{TestUser{-70.0, 400.0}, TestUser{-70.0, 400.0}};
  users[0].remaining_kb = 0.0;
  const SlotContext ctx = make_context(users);
  const Allocation alloc = rtma.allocate(ctx);
  EXPECT_EQ(alloc.units[0], 0);
  EXPECT_GT(alloc.units[1], 0);
}

TEST(Rtma, RejectsInvalidConfig) {
  RtmaConfig bad;
  bad.energy_budget_mj = 0.0;
  EXPECT_THROW(RtmaScheduler{bad}, Error);
  RtmaConfig bad_range;
  bad_range.min_dbm = -50.0;
  bad_range.max_dbm = -110.0;
  EXPECT_THROW(RtmaScheduler{bad_range}, Error);
}

TEST(Rtma, NameAndConfigAccessors) {
  RtmaScheduler rtma;
  EXPECT_EQ(rtma.name(), "rtma");
  EXPECT_TRUE(std::isinf(rtma.config().energy_budget_mj));
}

}  // namespace
}  // namespace jstream
