// Differential fuzz for the accelerated exact EMA solver stack and the
// certified-ε coarsened solver.
//
// The block prefix/suffix DP, the separable fast path, the identical-instance
// memo, and the warm-start resume must all be *bit-identical* to the PR2
// monotone-deque solver and the paper-literal reference DP — same units for
// every user, not just the same objective, so every tie-break is pinned. The
// coarsened solver must stay feasible and its certified gap must genuinely
// bound the distance to the exact optimum on every instance.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "core/ema.hpp"
#include "net/allocation.hpp"
#include "common/units.hpp"

namespace jstream {
namespace {

double total_cost(const EmaSlotCosts& costs, const Allocation& alloc) {
  double sum = 0.0;
  for (std::size_t i = 0; i < alloc.units.size(); ++i) {
    sum += ema_cost(costs, i, alloc.units[i]);
  }
  return sum;
}

struct Instance {
  EmaSlotCosts costs;
  std::vector<std::int64_t> caps;
  std::int64_t capacity = 0;
};

// Mirrors the regimes compute_ema_slot_costs produces (positive/negative
// slopes, zero caps, zero bases) plus adversarial near-ties: with probability
// 1/4 the slope is snapped to 0 or to an exact copy of a neighbor's, forcing
// the tie-break paths and the separable margin fallback.
Instance random_instance(Rng& rng, std::size_t max_users, std::int64_t max_cap) {
  Instance inst;
  const auto n = checked_size(
      rng.uniform_int(0, checked_index(max_users)));
  inst.costs.idle_cost.resize(n);
  inst.costs.active_base.resize(n);
  inst.costs.slope.resize(n);
  inst.caps.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    inst.costs.idle_cost[i] = rng.uniform(0.0, 5.0);
    inst.costs.active_base[i] =
        rng.uniform(0.0, 1.0) < 0.5 ? 0.0 : rng.uniform(0.0, 2.0);
    inst.costs.slope[i] = rng.uniform(-1.0, 1.0);
    const double tie_roll = rng.uniform(0.0, 1.0);
    if (tie_roll < 0.1) {
      inst.costs.slope[i] = 0.0;  // flat active segment: every phi ties
    } else if (tie_roll < 0.25 && i > 0) {
      inst.costs.slope[i] = inst.costs.slope[i - 1];
      inst.costs.idle_cost[i] = inst.costs.idle_cost[i - 1];
      inst.costs.active_base[i] = inst.costs.active_base[i - 1];
    }
    inst.caps[i] = rng.uniform(0.0, 1.0) < 0.1 ? 0 : rng.uniform_int(0, max_cap);
  }
  inst.capacity = rng.uniform_int(0, 2 * max_cap);
  return inst;
}

// A slack-capacity instance: the sum of unconstrained optima always fits, so
// the separable fast path is eligible whenever its tie margins clear.
Instance slack_instance(Rng& rng, std::size_t users, std::int64_t max_cap) {
  Instance inst;
  inst.costs.idle_cost.resize(users);
  inst.costs.active_base.resize(users);
  inst.costs.slope.resize(users);
  inst.caps.resize(users);
  std::int64_t cap_sum = 0;
  for (std::size_t i = 0; i < users; ++i) {
    inst.costs.idle_cost[i] = rng.uniform(0.0, 5.0);
    inst.costs.active_base[i] = rng.uniform(0.0, 2.0);
    inst.costs.slope[i] = rng.uniform(-1.0, 1.0);
    inst.caps[i] = rng.uniform_int(1, max_cap);
    cap_sum += inst.caps[i];
  }
  inst.capacity = cap_sum + rng.uniform_int(0, max_cap);
  return inst;
}

void expect_identical_units(const Allocation& got, const Allocation& want,
                            int trial, const char* what) {
  ASSERT_EQ(got.units.size(), want.units.size()) << what << " trial " << trial;
  for (std::size_t i = 0; i < got.units.size(); ++i) {
    ASSERT_EQ(got.units[i], want.units[i])
        << what << " trial " << trial << " user " << i;
  }
}

// The tentpole contract: the block/warm-start solver reproduces the deque
// solver unit-for-unit across 1000 randomized instances with forced exact
// ties, and both stay cost-optimal against the paper-literal reference.
//
// Unit-level equality is asserted against the *deque* solver — today's
// production behavior, pinned by the golden digests — not the reference: the
// deque breaks exact ties through sliding-window keys (prev[j] - slope*j)
// while the reference compares full candidates (prev[j] + base + slope*phi),
// so FP-exact ties can legitimately resolve to different argmins of the same
// optimal cost.
TEST(EmaSimdSolver, FuzzBitIdenticalToDequeAndCostOptimal) {
  Rng rng(20260808);
  EmaDpWorkspace fast_ws;
  EmaDpWorkspace deque_ws;
  Allocation fast;
  Allocation deque_out;
  for (int trial = 0; trial < 1000; ++trial) {
    Rng trial_rng = rng.split(static_cast<std::uint64_t>(trial));
    const Instance inst = random_instance(trial_rng, 14, 24);
    solve_min_cost_dp(inst.costs, inst.caps, inst.capacity, fast_ws, fast);
    solve_min_cost_dp_deque(inst.costs, inst.caps, inst.capacity, deque_ws,
                            deque_out);
    const Allocation ref =
        solve_min_cost_dp_reference(inst.costs, inst.caps, inst.capacity);
    expect_identical_units(fast, deque_out, trial, "block-vs-deque");
    ASSERT_NEAR(total_cost(inst.costs, fast), total_cost(inst.costs, ref), 1e-9)
        << "trial " << trial;
  }
}

// On tie-free instances (continuous cost draws, no snapping) all three
// solvers share a unique argmin: assert full unit-level agreement.
TEST(EmaSimdSolver, FuzzTieFreeInstancesMatchReferenceExactly) {
  Rng rng(1618);
  EmaDpWorkspace fast_ws;
  EmaDpWorkspace deque_ws;
  Allocation fast;
  Allocation deque_out;
  for (int trial = 0; trial < 500; ++trial) {
    Rng trial_rng = rng.split(static_cast<std::uint64_t>(trial));
    Instance inst;
    const auto n = checked_size(trial_rng.uniform_int(0, 14));
    inst.costs.idle_cost.resize(n);
    inst.costs.active_base.resize(n);
    inst.costs.slope.resize(n);
    inst.caps.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      inst.costs.idle_cost[i] = trial_rng.uniform(0.0, 5.0);
      inst.costs.active_base[i] = trial_rng.uniform(0.0, 2.0);
      inst.costs.slope[i] = trial_rng.uniform(-1.0, 1.0);
      inst.caps[i] =
          trial_rng.uniform(0.0, 1.0) < 0.1 ? 0 : trial_rng.uniform_int(0, 24);
    }
    inst.capacity = trial_rng.uniform_int(0, 48);
    solve_min_cost_dp(inst.costs, inst.caps, inst.capacity, fast_ws, fast);
    solve_min_cost_dp_deque(inst.costs, inst.caps, inst.capacity, deque_ws,
                            deque_out);
    const Allocation ref =
        solve_min_cost_dp_reference(inst.costs, inst.caps, inst.capacity);
    expect_identical_units(deque_out, ref, trial, "deque-vs-reference");
    expect_identical_units(fast, ref, trial, "block-vs-reference");
  }
}

// Same contract on slack instances, where the separable fast path fires: the
// O(N) path must agree with the full DP unit-for-unit, and near-tie instances
// must fall back rather than guess.
TEST(EmaSimdSolver, SeparableFastPathBitIdenticalToReference) {
  Rng rng(555);
  EmaDpWorkspace ws;
  Allocation fast;
  std::int64_t separable_before = 0;
  for (int trial = 0; trial < 400; ++trial) {
    Rng trial_rng = rng.split(static_cast<std::uint64_t>(trial));
    const Instance inst = slack_instance(trial_rng, 12, 10);
    ws.invalidate();  // isolate trials: no memo carry-over
    solve_min_cost_dp(inst.costs, inst.caps, inst.capacity, ws, fast);
    const Allocation ref =
        solve_min_cost_dp_reference(inst.costs, inst.caps, inst.capacity);
    expect_identical_units(fast, ref, trial, "separable-vs-reference");
    separable_before = ws.separable_hits;
  }
  // The path must actually engage on slack instances, not silently fall back.
  EXPECT_GT(separable_before, 0);
}

// An all-zero-cost instance ties every allocation; the DP's tie-breaks pick
// all-idle, and the separable path must reproduce exactly that.
TEST(EmaSimdSolver, AllZeroCostsResolveToAllIdle) {
  Instance inst;
  inst.costs.idle_cost.assign(6, 0.0);
  inst.costs.active_base.assign(6, 0.0);
  inst.costs.slope.assign(6, 0.0);
  inst.caps.assign(6, 4);
  inst.capacity = 12;
  const Allocation fast = solve_min_cost_dp(inst.costs, inst.caps, inst.capacity);
  const Allocation ref =
      solve_min_cost_dp_reference(inst.costs, inst.caps, inst.capacity);
  expect_identical_units(fast, ref, 0, "zero-cost");
  for (const std::int64_t phi : fast.units) EXPECT_EQ(phi, 0);
}

// Warm-start differential: a long-lived workspace solving a drifting slot
// sequence (typical scheduler usage: a few users' queues change per slot,
// sometimes everything changes, sometimes nothing does) must return exactly
// what a cold solve returns on every slot.
TEST(EmaSimdSolver, WarmStartSequenceMatchesColdSolves) {
  Rng rng(90210);
  Instance inst = slack_instance(rng, 24, 8);
  inst.capacity = 60;  // binding: force real DP solves, not the separable path
  EmaDpWorkspace warm_ws;
  Allocation warm;
  std::int64_t resumed = 0;
  for (int slot = 0; slot < 120; ++slot) {
    const int mode = slot % 4;
    if (mode == 1) {
      // Tail drift: only the last few users change (prefix-resume eligible).
      for (std::size_t i = inst.caps.size() - 3; i < inst.caps.size(); ++i) {
        inst.costs.slope[i] += rng.uniform(-0.05, 0.05);
      }
    } else if (mode == 2) {
      // Full drift: every user's queue moved.
      for (std::size_t i = 0; i < inst.caps.size(); ++i) {
        inst.costs.slope[i] += rng.uniform(-0.01, 0.01);
      }
    } else if (mode == 3) {
      // Geometry change: one user's cap shrinks (and may re-grow later).
      const auto i = checked_size(
          rng.uniform_int(0, checked_index(inst.caps.size()) - 1));
      inst.caps[i] = rng.uniform_int(0, 8);
    }
    // mode == 0: identical instance (memo-hit slot).
    solve_min_cost_dp(inst.costs, inst.caps, inst.capacity, warm_ws, warm);
    const Allocation cold =
        solve_min_cost_dp(inst.costs, inst.caps, inst.capacity);
    expect_identical_units(warm, cold, slot, "warm-vs-cold");
    resumed = warm_ws.resumed_rows;
  }
  EXPECT_GT(warm_ws.memo_hits, 0);
  EXPECT_GT(warm_ws.dp_solves, 0);
  (void)resumed;  // resume engages only when n >= the checkpoint stride
}

// Warm-start resume at a size where checkpoints actually skip rows: n larger
// than the checkpoint stride, tail-only mutations.
TEST(EmaSimdSolver, WarmStartResumeSkipsRowsAndStaysExact) {
  Rng rng(443322);
  Instance inst = slack_instance(rng, 200, 4);
  inst.capacity = 300;  // binding at ~sum(caps)/1.7
  EmaDpWorkspace warm_ws;
  Allocation warm;
  solve_min_cost_dp(inst.costs, inst.caps, inst.capacity, warm_ws, warm);
  for (int round = 0; round < 10; ++round) {
    inst.costs.slope[197] += 0.01;
    inst.costs.idle_cost[199] = rng.uniform(0.0, 5.0);
    solve_min_cost_dp(inst.costs, inst.caps, inst.capacity, warm_ws, warm);
    const Allocation cold =
        solve_min_cost_dp(inst.costs, inst.caps, inst.capacity);
    expect_identical_units(warm, cold, round, "resume-vs-cold");
  }
  EXPECT_GT(warm_ws.resumed_rows, 0);
}

// The coarsened solver's contract on every instance: feasibility, a sound
// certificate (exact optimum >= lower_bound, so cost - optimum <= gap), and
// an exact outcome when it claims one.
TEST(EmaCoarseSolver, FuzzCertificateBoundsDistanceToExactOptimum) {
  Rng rng(20260807);
  EmaCoarseWorkspace ws;
  Allocation coarse;
  int certified = 0;
  for (int trial = 0; trial < 1000; ++trial) {
    Rng trial_rng = rng.split(static_cast<std::uint64_t>(trial));
    const Instance inst = random_instance(trial_rng, 12, 24);
    const std::int64_t k = trial_rng.uniform_int(1, 6);
    const EmaCoarseOutcome outcome = solve_min_cost_coarse(
        inst.costs, inst.caps, inst.capacity, k, ws, coarse);
    // Feasibility.
    std::int64_t total = 0;
    for (std::size_t i = 0; i < inst.caps.size(); ++i) {
      ASSERT_GE(coarse.units[i], 0) << "trial " << trial;
      ASSERT_LE(coarse.units[i], inst.caps[i]) << "trial " << trial;
      total += coarse.units[i];
    }
    ASSERT_LE(total, inst.capacity) << "trial " << trial;
    // Certificate soundness against the exact optimum.
    const Allocation exact =
        solve_min_cost_dp(inst.costs, inst.caps, inst.capacity);
    const double opt = total_cost(inst.costs, exact);
    const double realized = total_cost(inst.costs, coarse);
    ASSERT_NEAR(realized, outcome.cost, 1e-9) << "trial " << trial;
    ASSERT_GE(outcome.gap, 0.0) << "trial " << trial;
    ASSERT_LE(outcome.lower_bound, opt + 1e-9)
        << "trial " << trial << ": dual bound above the exact optimum";
    ASSERT_LE(realized - opt, outcome.gap + 1e-9)
        << "trial " << trial << ": certified gap fails to cover the real gap";
    if (outcome.exact) {
      ASSERT_NEAR(realized, opt, 1e-9)
          << "trial " << trial << ": claimed exact but optimum differs";
    } else {
      ++certified;
    }
  }
  // The coarse path (not just the separable/exact shortcut) must be exercised.
  EXPECT_GT(certified, 0);
}

// k = 1 coarsening is the exact solver: zero gap, identical units.
TEST(EmaCoarseSolver, UnitFactorDelegatesToExactSolver) {
  Rng rng(8);
  EmaCoarseWorkspace ws;
  Allocation coarse;
  for (int trial = 0; trial < 50; ++trial) {
    Rng trial_rng = rng.split(static_cast<std::uint64_t>(trial));
    const Instance inst = random_instance(trial_rng, 10, 16);
    const EmaCoarseOutcome outcome =
        solve_min_cost_coarse(inst.costs, inst.caps, inst.capacity, 1, ws, coarse);
    const Allocation exact =
        solve_min_cost_dp(inst.costs, inst.caps, inst.capacity);
    expect_identical_units(coarse, exact, trial, "k1-vs-exact");
    EXPECT_EQ(outcome.gap, 0.0) << "trial " << trial;
    EXPECT_TRUE(outcome.exact) << "trial " << trial;
  }
}

// Coarsening can only lose bounded cost: on slack instances the separable
// shortcut keeps it exact regardless of k.
TEST(EmaCoarseSolver, SlackInstancesStayExactUnderCoarsening) {
  Rng rng(606);
  EmaCoarseWorkspace ws;
  Allocation coarse;
  for (int trial = 0; trial < 100; ++trial) {
    Rng trial_rng = rng.split(static_cast<std::uint64_t>(trial));
    const Instance inst = slack_instance(trial_rng, 16, 12);
    const EmaCoarseOutcome outcome =
        solve_min_cost_coarse(inst.costs, inst.caps, inst.capacity, 4, ws, coarse);
    if (!outcome.exact) continue;  // margin fallback: handled by the fuzz test
    const Allocation exact =
        solve_min_cost_dp(inst.costs, inst.caps, inst.capacity);
    EXPECT_NEAR(total_cost(inst.costs, coarse), total_cost(inst.costs, exact),
                1e-9)
        << "trial " << trial;
    EXPECT_EQ(outcome.gap, 0.0) << "trial " << trial;
  }
}

}  // namespace
}  // namespace jstream
