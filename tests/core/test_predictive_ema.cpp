// PredictiveEmaScheduler (core/predictive_ema.hpp):
//   * horizon 0 (with or without a forecast error spec) is bit-identical to
//     the plain EmaScheduler across every catalog scenario — the adjust_costs
//     hook must be inert, so all pre-existing golden digests stay byte-stable;
//   * fuzzed slot instances: the predictive allocation always satisfies
//     Eq. 1 (per-user caps) and Eq. 2 (cell capacity), and — the DP being
//     exact for the adjusted cost model — never costs more than a
//     lookahead-style greedy heuristic fed the same perfect-forecast prices;
//   * the price tables (windowed minimum / offset / window mean) match a
//     brute-force scan of the forecast.
#include "core/predictive_ema.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/ema.hpp"
#include "sim/catalog.hpp"
#include "sim/distrib.hpp"
#include "sim/experiment.hpp"
#include "test_helpers.hpp"
#include "common/units.hpp"

namespace jstream {
namespace {

using testing::TestUser;
using testing::make_context;

std::vector<std::vector<double>> constant_forecast(std::size_t users, double dbm,
                                                   std::size_t slots = 64) {
  return std::vector<std::vector<double>>(users, std::vector<double>(slots, dbm));
}

// --- zero-horizon bit-identity across the scenario catalog -----------------

TEST(PredictiveEma, ZeroHorizonBitIdenticalToEmaAcrossCatalog) {
  for (const ScenarioPreset& preset : scenario_catalog()) {
    const std::string& name = preset.name;
    ScenarioConfig scenario = make_catalog_scenario(name, 5, 20260808);
    scenario.max_slots = std::min<std::int64_t>(scenario.max_slots, 150);
    scenario.arrival_spread_slots =
        std::min(scenario.arrival_spread_slots, scenario.max_slots - 1);
    SchedulerOptions options;  // ema_predictive.horizon_slots == 0
    const RunMetrics ema = run_experiment({"ema", "ema", scenario, options}, false);
    const RunMetrics pred =
        run_experiment({"pred", "ema-predictive", scenario, options}, false);
    EXPECT_EQ(metrics_digest(ema), metrics_digest(pred)) << name;
  }
}

TEST(PredictiveEma, ZeroHorizonIgnoresForecastErrorSpec) {
  // A non-trivial error model must not disturb the horizon-0 run: the hook
  // never reads the forecast, so the digest still matches plain EMA.
  ScenarioConfig scenario = make_catalog_scenario("paper", 4, 7);
  scenario.max_slots = 120;
  SchedulerOptions options;
  const RunMetrics ema = run_experiment({"ema", "ema", scenario, options}, false);
  scenario.forecast.sigma_dbm = 6.0;
  scenario.forecast.staleness_slots = 4;
  const RunMetrics pred =
      run_experiment({"pred", "ema-predictive", scenario, options}, false);
  EXPECT_EQ(metrics_digest(ema), metrics_digest(pred));
}

TEST(PredictiveEma, HorizonChangesTheAllocation) {
  // Guard against the hook silently never firing: on the paper scenario a
  // long-horizon predictive run must differ from plain EMA.
  ScenarioConfig scenario = make_catalog_scenario("paper", 5, 11);
  scenario.max_slots = 200;
  SchedulerOptions options;
  const RunMetrics ema = run_experiment({"ema", "ema", scenario, options}, false);
  options.ema_predictive.horizon_slots = 60;
  const RunMetrics pred =
      run_experiment({"pred", "ema-predictive", scenario, options}, false);
  EXPECT_NE(metrics_digest(ema), metrics_digest(pred));
}

// --- price-table correctness ----------------------------------------------

TEST(PredictiveEma, PriceTablesMatchBruteForce) {
  const std::size_t slots = 40;
  const std::int64_t horizon = 7;
  Rng rng(99);
  std::vector<std::vector<double>> forecast(
      2, std::vector<double>(slots));
  for (auto& row : forecast) {
    for (double& dbm : row) dbm = rng.uniform(-110.0, -60.0);
  }

  PredictiveEmaConfig config;
  config.horizon_slots = horizon;
  PredictiveEmaScheduler scheduler({}, config, forecast);
  scheduler.reset(2);
  std::vector<TestUser> users(2);
  const SlotContext ctx = make_context(users);
  Allocation out = scheduler.allocate(ctx);  // builds the tables lazily

  for (std::size_t user = 0; user < 2; ++user) {
    for (std::int64_t n = 0; n + 1 < checked_index(slots); ++n) {
      double best = 1e300;
      std::int64_t offset = 0;
      double sum = 0.0;
      std::int64_t count = 0;
      for (std::int64_t h = 1; h <= horizon && n + h < checked_index(slots); ++h) {
        const double price =
            ctx.power->energy_per_kb(forecast[user][checked_size(n + h)]);
        sum += price;
        ++count;
        if (price < best) {
          best = price;
          offset = h;
        }
      }
      const auto pred = scheduler.price_prediction(user, n);
      EXPECT_DOUBLE_EQ(pred.best_price, best) << "user " << user << " slot " << n;
      EXPECT_EQ(pred.best_offset, offset) << "user " << user << " slot " << n;
      // The table computes the mean via prefix sums — same value up to
      // summation order, so allow round-off slack (never behavioural drift).
      EXPECT_NEAR(pred.mean_price, sum / as_double(count), 1e-9)
          << "user " << user << " slot " << n;
    }
  }
}

// --- fuzz: feasibility + DP beats the lookahead-style greedy ---------------

/// Replays PredictiveEmaScheduler::adjust_costs from its public surface: the
/// price tables via price_prediction and the documented two-term rule.
void apply_predictive_adjustment(const PredictiveEmaScheduler& scheduler,
                                 const SlotContext& ctx, EmaSlotCosts& costs) {
  const PredictiveEmaConfig& pred = scheduler.predictive_config();
  const double scale =
      scheduler.config().v_weight * ctx.params.delta_kb;
  for (std::size_t i = 0; i < ctx.user_count(); ++i) {
    if (!ctx.soa.needs_data(i) || ctx.soa.alloc_cap_units[i] <= 0) continue;
    const auto tables = scheduler.price_prediction(i, ctx.slot);
    const double p_now = ctx.soa.energy_per_kb[i];
    double adjust = 0.0;
    const double save = p_now - tables.best_price;
    if (save > 0.0 &&
        ctx.soa.buffer_s[i] >= as_double(tables.best_offset) * ctx.params.tau_s +
                                   pred.safety_margin_s) {
      adjust += pred.defer_weight * save;
    }
    const double crest = p_now - tables.mean_price;
    if (crest < 0.0) adjust += pred.prefetch_weight * crest;
    costs.slope[i] += scale * adjust;
  }
}

/// Lookahead-flavored greedy on the same adjusted costs: serve users in
/// ascending marginal-cost order, each to the per-user extent that improves
/// its own cost, until the cell capacity runs out. Always feasible, so the
/// exact DP must never cost more.
std::vector<std::int64_t> greedy_heuristic(const EmaSlotCosts& costs,
                                           const SlotContext& ctx) {
  const std::size_t n = ctx.user_count();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return costs.slope[a] < costs.slope[b];
  });
  std::vector<std::int64_t> units(n, 0);
  std::int64_t left = ctx.capacity_units;
  for (const std::size_t i : order) {
    const std::int64_t cap = std::min<std::int64_t>(ctx.users[i].alloc_cap_units, left);
    if (cap <= 0) continue;
    // Linear cost: if any activity beats idling, the best extent is the cap.
    std::int64_t best_phi = 0;
    double best_cost = ema_cost(costs, i, 0);
    if (ema_cost(costs, i, cap) < best_cost) {
      best_phi = cap;
      best_cost = ema_cost(costs, i, cap);
    }
    if (ema_cost(costs, i, 1) < best_cost) best_phi = 1;
    units[i] = best_phi;
    left -= best_phi;
  }
  return units;
}

TEST(PredictiveEma, FuzzFeasibilityAndBeatsGreedy) {
  Rng rng(0xfeedf00d);
  constexpr int kInstances = 600;
  for (int instance = 0; instance < kInstances; ++instance) {
    const std::size_t n = checked_size(rng.uniform_int(1, 12));
    const std::size_t slots = checked_size(rng.uniform_int(4, 60));
    std::vector<std::vector<double>> forecast(n, std::vector<double>(slots));
    for (auto& row : forecast) {
      for (double& dbm : row) dbm = rng.uniform(-112.0, -58.0);
    }
    PredictiveEmaConfig pred;
    pred.horizon_slots = rng.uniform_int(1, checked_index(slots));
    pred.defer_weight = rng.uniform(0.0, 4.0);
    pred.prefetch_weight = rng.uniform(0.0, 16.0);
    pred.safety_margin_s = rng.uniform(0.0, 12.0);
    EmaConfig ema;
    ema.v_weight = rng.uniform(0.01, 0.5);
    PredictiveEmaScheduler scheduler(ema, pred, forecast);
    scheduler.reset(n);

    std::vector<TestUser> users(n);
    for (TestUser& user : users) {
      user.signal_dbm = rng.uniform(-112.0, -58.0);
      user.remaining_kb = rng.uniform(0.0, 4000.0);
      user.buffer_s = rng.uniform(0.0, 60.0);
    }
    const double capacity_kbps = rng.uniform(1000.0, 30000.0);
    const std::int64_t slot = rng.uniform_int(0, checked_index(slots) - 1);
    const SlotContext ctx = make_context(users, capacity_kbps, SlotParams{}, slot);

    // Twin plain scheduler supplies the pre-allocate queue state (both are
    // freshly reset, so their Eq. 16 queues agree).
    EmaScheduler twin(ema);
    twin.reset(n);
    const Allocation alloc = scheduler.allocate(ctx);

    // Eq. 1 / Eq. 2 feasibility.
    ASSERT_EQ(alloc.units.size(), n);
    std::int64_t total = 0;
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_GE(alloc.units[i], 0) << "instance " << instance;
      EXPECT_LE(alloc.units[i], ctx.users[i].alloc_cap_units)
          << "instance " << instance << " user " << i;
      total += alloc.units[i];
    }
    EXPECT_LE(total, ctx.capacity_units) << "instance " << instance;

    // The exact DP on the adjusted costs can never lose to the greedy.
    EmaSlotCosts costs = compute_ema_slot_costs(ctx, twin.queues(), ema.v_weight);
    apply_predictive_adjustment(scheduler, ctx, costs);
    const std::vector<std::int64_t> greedy = greedy_heuristic(costs, ctx);
    double dp_cost = 0.0;
    double greedy_cost = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      if (!ctx.users[i].needs_data) continue;
      dp_cost += ema_cost(costs, i, alloc.units[i]);
      greedy_cost += ema_cost(costs, i, greedy[i]);
    }
    EXPECT_LE(dp_cost, greedy_cost + 1e-9) << "instance " << instance;
  }
}

// --- construction guards ---------------------------------------------------

TEST(PredictiveEma, RejectsBadConfigAndMissingForecast) {
  EXPECT_THROW(
      {
        PredictiveEmaConfig bad;
        bad.horizon_slots = -1;
        validate(bad);
      },
      Error);
  EXPECT_THROW(
      {
        PredictiveEmaConfig bad;
        bad.prefetch_weight = -0.5;
        validate(bad);
      },
      Error);
  PredictiveEmaConfig config;
  config.horizon_slots = 5;
  EXPECT_THROW(PredictiveEmaScheduler({}, config, {}), Error);
  // Population mismatch surfaces at reset.
  PredictiveEmaScheduler scheduler({}, config, constant_forecast(2, -80.0));
  EXPECT_THROW(scheduler.reset(3), Error);
}

TEST(PredictiveEma, ScenarioFreeFactoryRefusesPredictive) {
  EXPECT_THROW((void)make_scheduler("ema-predictive"), Error);
  const auto names = scenario_scheduler_names();
  ASSERT_EQ(names.size(), 1u);
  EXPECT_EQ(names.front(), "ema-predictive");
}

}  // namespace
}  // namespace jstream
