#include "core/energy_threshold.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "radio/radio_profile.hpp"

namespace jstream {
namespace {

class EnergyThresholdTest : public ::testing::Test {
 protected:
  LinkModel link_ = make_paper_link_model();
  EnergyThresholdSpec spec_{};  // budget set per test
};

TEST_F(EnergyThresholdTest, SlotEnergyEstimateMatchesEq12) {
  // Phi-cost at sig: 1/2 [P(sig) v(sig) tau + tau Ptail];
  // P*v = -0.167 v + 1560 mW.
  spec_.tail_power_mw = 732.83;
  const double sig = -80.0;
  const double v = 65.8 * sig + 7567.0;
  const double expected = 0.5 * ((-0.167 * v + 1560.0) + 732.83);
  EXPECT_NEAR(slot_energy_estimate_mj(spec_, *link_.throughput, *link_.power, sig),
              expected, 1e-9);
}

TEST_F(EnergyThresholdTest, CostDecreasesWithSignal) {
  double prev = slot_energy_estimate_mj(spec_, *link_.throughput, *link_.power, -110.0);
  for (double sig = -105.0; sig <= -50.0; sig += 5.0) {
    const double cur = slot_energy_estimate_mj(spec_, *link_.throughput, *link_.power, sig);
    EXPECT_LT(cur, prev);
    prev = cur;
  }
}

TEST_F(EnergyThresholdTest, GenerousBudgetAdmitsEveryone) {
  spec_.budget_mj = slot_energy_estimate_mj(spec_, *link_.throughput, *link_.power,
                                            spec_.min_dbm) + 1.0;
  EXPECT_DOUBLE_EQ(signal_threshold_dbm(spec_, *link_.throughput, *link_.power),
                   spec_.min_dbm);
}

TEST_F(EnergyThresholdTest, ImpossibleBudgetAdmitsNobody) {
  spec_.budget_mj = slot_energy_estimate_mj(spec_, *link_.throughput, *link_.power,
                                            spec_.max_dbm) - 1.0;
  EXPECT_GT(signal_threshold_dbm(spec_, *link_.throughput, *link_.power),
            spec_.max_dbm);
}

TEST_F(EnergyThresholdTest, ThresholdSolvesEq12Exactly) {
  // Pick the cost at -85 dBm as the budget: the threshold must be -85.
  const double target = -85.0;
  spec_.budget_mj =
      slot_energy_estimate_mj(spec_, *link_.throughput, *link_.power, target);
  const double phi = signal_threshold_dbm(spec_, *link_.throughput, *link_.power);
  EXPECT_NEAR(phi, target, 1e-6);
  // At the threshold the budget is satisfied; just below it is not.
  EXPECT_LE(slot_energy_estimate_mj(spec_, *link_.throughput, *link_.power, phi),
            spec_.budget_mj + 1e-9);
  EXPECT_GT(slot_energy_estimate_mj(spec_, *link_.throughput, *link_.power, phi - 0.01),
            spec_.budget_mj);
}

TEST_F(EnergyThresholdTest, ThresholdMonotoneInBudget) {
  double prev_threshold = 100.0;
  for (double budget : {800.0, 900.0, 1000.0, 1100.0}) {
    spec_.budget_mj = budget;
    const double phi = signal_threshold_dbm(spec_, *link_.throughput, *link_.power);
    EXPECT_LT(phi, prev_threshold);  // bigger budget -> weaker admissible signal
    prev_threshold = phi;
  }
}

TEST_F(EnergyThresholdTest, RejectsInvalidSpec) {
  spec_.budget_mj = -1.0;
  EXPECT_THROW((void)signal_threshold_dbm(spec_, *link_.throughput, *link_.power),
               Error);
  spec_.budget_mj = 100.0;
  spec_.min_dbm = -50.0;
  spec_.max_dbm = -110.0;
  EXPECT_THROW((void)signal_threshold_dbm(spec_, *link_.throughput, *link_.power),
               Error);
}

}  // namespace
}  // namespace jstream
