#include "core/ema.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "radio/rrc.hpp"
#include "test_helpers.hpp"
#include "common/units.hpp"

namespace jstream {
namespace {

using testing::TestUser;
using testing::make_context;

/// Exhaustive minimizer over all feasible allocations (tiny instances only).
double brute_force_min(const EmaSlotCosts& costs, const std::vector<std::int64_t>& caps,
                       std::int64_t capacity, std::vector<std::int64_t>& best) {
  const std::size_t n = caps.size();
  std::vector<std::int64_t> current(n, 0);
  double best_cost = std::numeric_limits<double>::infinity();
  const auto recurse = [&](auto&& self, std::size_t user, std::int64_t used,
                           double cost) -> void {
    if (user == n) {
      if (cost < best_cost) {
        best_cost = cost;
        best = current;
      }
      return;
    }
    for (std::int64_t phi = 0; phi <= caps[user] && used + phi <= capacity; ++phi) {
      current[user] = phi;
      self(self, user + 1, used + phi, cost + ema_cost(costs, user, phi));
    }
    current[user] = 0;
  };
  recurse(recurse, 0, 0, 0.0);
  return best_cost;
}

double total_cost(const EmaSlotCosts& costs, const Allocation& alloc) {
  double total = 0.0;
  for (std::size_t i = 0; i < alloc.units.size(); ++i) {
    total += ema_cost(costs, i, alloc.units[i]);
  }
  return total;
}

EmaSlotCosts random_costs(Rng& rng, std::size_t n) {
  EmaSlotCosts costs;
  for (std::size_t i = 0; i < n; ++i) {
    costs.idle_cost.push_back(rng.uniform(0.0, 40.0));
    costs.active_base.push_back(rng.uniform(0.0, 10.0));
    costs.slope.push_back(rng.uniform(-15.0, 15.0));
  }
  return costs;
}

TEST(EmaCosts, MatchTheReducedObjective) {
  // One promoted user, 2 s into its tail, positive queue.
  std::vector<TestUser> users{TestUser{-80.0, 400.0}};
  users[0].rrc_promoted = true;
  users[0].rrc_idle_s = 2.0;
  const SlotContext ctx = make_context(users);
  LyapunovQueues queues(1);
  queues.update(0, 1.0, 0.0);
  queues.update(0, 1.0, 0.0);  // PC = 2
  const double v_weight = 0.05;
  const EmaSlotCosts costs = compute_ema_slot_costs(ctx, queues, v_weight);

  // Idle: V * (Etail(3) - Etail(2)) = V * Pd (still inside T1).
  EXPECT_NEAR(costs.idle_cost[0], v_weight * 732.83, 1e-9);
  // Eq. 5 accounting: no active base.
  EXPECT_DOUBLE_EQ(costs.active_base[0], 0.0);
  // slope = V*P(sig)*delta - PC*delta/p.
  const double p_mj_per_kb = -0.167 + 1560.0 / 2303.0;
  EXPECT_NEAR(costs.slope[0], v_weight * p_mj_per_kb * 100.0 - 2.0 * 100.0 / 400.0,
              1e-9);
}

TEST(EmaCosts, UnpromotedRadioHasFreeIdle) {
  const SlotContext ctx = make_context({TestUser{-80.0, 400.0}});
  const LyapunovQueues queues(1);
  const EmaSlotCosts costs = compute_ema_slot_costs(ctx, queues, 0.05);
  EXPECT_DOUBLE_EQ(costs.idle_cost[0], 0.0);
}

TEST(EmaDp, MatchesBruteForceOnRandomInstances) {
  Rng rng(2024);
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t n = 1 + checked_size(rng.uniform_int(0, 2));
    std::vector<std::int64_t> caps;
    for (std::size_t i = 0; i < n; ++i) caps.push_back(rng.uniform_int(0, 4));
    const std::int64_t capacity = rng.uniform_int(0, 6);
    const EmaSlotCosts costs = random_costs(rng, n);

    std::vector<std::int64_t> best;
    const double expected = brute_force_min(costs, caps, capacity, best);
    const Allocation alloc = solve_min_cost_dp(costs, caps, capacity);
    EXPECT_NEAR(total_cost(costs, alloc), expected, 1e-9)
        << "trial " << trial << " n=" << n << " capacity=" << capacity;
    EXPECT_LE(alloc.total_units(), capacity);
  }
}

TEST(EmaDp, RespectsCapsAndCapacity) {
  Rng rng(7);
  const std::size_t n = 10;
  std::vector<std::int64_t> caps;
  for (std::size_t i = 0; i < n; ++i) caps.push_back(rng.uniform_int(0, 40));
  const EmaSlotCosts costs = random_costs(rng, n);
  const Allocation alloc = solve_min_cost_dp(costs, caps, 60);
  EXPECT_LE(alloc.total_units(), 60);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_GE(alloc.units[i], 0);
    EXPECT_LE(alloc.units[i], caps[i]);
  }
}

TEST(EmaDp, NegativeSlopeUserGetsItsCap) {
  EmaSlotCosts costs;
  costs.idle_cost = {0.0};
  costs.active_base = {0.0};
  costs.slope = {-1.0};
  const std::vector<std::int64_t> caps{5};
  const Allocation alloc = solve_min_cost_dp(costs, caps, 100);
  EXPECT_EQ(alloc.units[0], 5);
}

TEST(EmaDp, PositiveSlopeUserStaysIdleUnlessTailDominates) {
  EmaSlotCosts costs;
  costs.idle_cost = {0.5, 40.0};
  costs.active_base = {0.0, 0.0};
  costs.slope = {1.0, 1.0};
  const std::vector<std::int64_t> caps{5, 5};
  const Allocation alloc = solve_min_cost_dp(costs, caps, 100);
  EXPECT_EQ(alloc.units[0], 0);  // idle (0.5) beats transmitting (>= 1.0)
  EXPECT_EQ(alloc.units[1], 1);  // one unit (1.0) beats the 40.0 tail
}

TEST(EmaDp, ZeroCapacityMeansNoAllocation) {
  EmaSlotCosts costs;
  costs.idle_cost = {10.0};
  costs.active_base = {0.0};
  costs.slope = {-5.0};
  const std::vector<std::int64_t> caps{3};
  const Allocation alloc = solve_min_cost_dp(costs, caps, 0);
  EXPECT_EQ(alloc.units[0], 0);
}

TEST(EmaScheduler, QueueEvolvesByEq16) {
  EmaScheduler ema(EmaConfig{0.05});
  ema.reset(1);
  // Strong signal, big queue pressure expected after idle slots.
  std::vector<TestUser> users{TestUser{-110.0, 400.0}};
  users[0].rrc_promoted = false;
  const SlotContext ctx = make_context(users);
  const Allocation alloc = ema.allocate(ctx);
  // PC(1) = PC(0) + tau - t(0) where t = kb / p.
  const double t = as_double(alloc.units[0]) * 100.0 / 400.0;
  EXPECT_NEAR(ema.queues().value(0), 1.0 - t, 1e-9);
}

TEST(EmaScheduler, QueueFrozenWhenContentExhausted) {
  EmaScheduler ema(EmaConfig{0.05});
  ema.reset(1);
  std::vector<TestUser> users{TestUser{-80.0, 400.0}};
  users[0].remaining_kb = 0.0;
  const SlotContext ctx = make_context(users);
  (void)ema.allocate(ctx);
  EXPECT_DOUBLE_EQ(ema.queues().value(0), 0.0);
}

TEST(EmaScheduler, AllocationsAlwaysFeasible) {
  EmaScheduler ema(EmaConfig{0.05});
  ema.reset(4);
  Rng rng(5);
  for (int slot = 0; slot < 50; ++slot) {
    std::vector<TestUser> users;
    for (int i = 0; i < 4; ++i) {
      TestUser user;
      user.signal_dbm = rng.uniform(-110.0, -50.0);
      user.bitrate_kbps = rng.uniform(300.0, 600.0);
      user.rrc_promoted = slot > 0;
      user.rrc_idle_s = rng.uniform(0.0, 8.0);
      users.push_back(user);
    }
    const SlotContext ctx = make_context(users, 2000.0);
    const Allocation alloc = ema.allocate(ctx);
    EXPECT_LE(alloc.total_units(), ctx.capacity_units);
    for (std::size_t i = 0; i < 4; ++i) {
      EXPECT_LE(alloc.units[i], ctx.users[i].alloc_cap_units);
    }
  }
}

TEST(EmaScheduler, RequiresResetBeforeUse) {
  EmaScheduler ema;
  const SlotContext ctx = make_context({TestUser{}});
  EXPECT_THROW((void)ema.allocate(ctx), Error);
}

TEST(EmaScheduler, RejectsNonPositiveV) {
  EXPECT_THROW(EmaScheduler(EmaConfig{0.0}), Error);
  EXPECT_THROW(EmaScheduler(EmaConfig{-1.0}), Error);
}

}  // namespace
}  // namespace jstream
