#include "core/lookahead.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "sim/forecast.hpp"
#include "sim/scenario.hpp"
#include "test_helpers.hpp"
#include "common/units.hpp"

namespace jstream {
namespace {

using testing::TestUser;
using testing::make_context;

/// One user whose forecast says the channel improves sharply next slot.
std::vector<std::vector<double>> improving_forecast(std::size_t slots = 50) {
  std::vector<double> trace(slots, -55.0);
  trace[0] = -105.0;  // now: expensive
  return {trace};
}

/// One user whose forecast says now is as good as it gets.
std::vector<std::vector<double>> flat_forecast(double dbm = -70.0,
                                               std::size_t slots = 50) {
  return {std::vector<double>(slots, dbm)};
}

TEST(Lookahead, DefersWhenBetterSlotIsPredicted) {
  LookaheadScheduler scheduler(LookaheadConfig{}, improving_forecast());
  scheduler.reset(1);
  std::vector<TestUser> users{TestUser{-105.0, 400.0}};
  users[0].buffer_s = 20.0;  // healthy, no safety pressure
  const SlotContext ctx = make_context(users);
  EXPECT_EQ(scheduler.allocate(ctx).total_units(), 0);
}

TEST(Lookahead, PrefetchesAtTheLocalPriceMinimum) {
  LookaheadScheduler scheduler(LookaheadConfig{}, flat_forecast());
  scheduler.reset(1);
  std::vector<TestUser> users{TestUser{-70.0, 400.0}};
  users[0].buffer_s = 20.0;  // below the prefetch target of 60 s
  const SlotContext ctx = make_context(users);
  EXPECT_GT(scheduler.allocate(ctx).total_units(), 0);
}

TEST(Lookahead, SafetyOverridesPrice) {
  LookaheadScheduler scheduler(LookaheadConfig{}, improving_forecast());
  scheduler.reset(1);
  std::vector<TestUser> users{TestUser{-105.0, 400.0}};
  users[0].buffer_s = 1.0;  // below the safety level: transmit regardless
  const SlotContext ctx = make_context(users);
  EXPECT_GT(scheduler.allocate(ctx).total_units(), 0);
}

TEST(Lookahead, UrgentUsersWinTheCapacity) {
  std::vector<std::vector<double>> forecast{std::vector<double>(50, -70.0),
                                            std::vector<double>(50, -70.0)};
  LookaheadScheduler scheduler(LookaheadConfig{}, std::move(forecast));
  scheduler.reset(2);
  std::vector<TestUser> users{TestUser{-70.0, 400.0}, TestUser{-70.0, 400.0}};
  users[0].buffer_s = 50.0;  // comfortable
  users[1].buffer_s = 0.5;   // starving
  // Capacity for roughly one user's catch-up only.
  const SlotContext ctx = make_context(users, /*capacity_kbps=*/600.0);
  const Allocation alloc = scheduler.allocate(ctx);
  EXPECT_GT(alloc.units[1], 0);
  EXPECT_EQ(alloc.units[0], 0);
}

TEST(Lookahead, RespectsConstraints) {
  std::vector<std::vector<double>> forecast{std::vector<double>(50, -60.0),
                                            std::vector<double>(50, -90.0)};
  LookaheadScheduler scheduler(LookaheadConfig{}, std::move(forecast));
  scheduler.reset(2);
  const SlotContext ctx =
      make_context({TestUser{-60.0, 500.0}, TestUser{-90.0, 500.0}}, 3000.0);
  const Allocation alloc = scheduler.allocate(ctx);
  EXPECT_LE(alloc.total_units(), ctx.capacity_units);
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_LE(alloc.units[i], ctx.users[i].alloc_cap_units);
  }
}

TEST(Lookahead, ForecastMatchesSimulatedSignals) {
  ScenarioConfig config = paper_scenario(3, 13);
  const auto forecast = make_signal_forecast(config, 100);
  auto endpoints = build_endpoints(config);
  ASSERT_EQ(forecast.size(), 3u);
  for (std::size_t i = 0; i < endpoints.size(); ++i) {
    for (std::int64_t slot = 0; slot < 100; ++slot) {
      ASSERT_DOUBLE_EQ(forecast[i][checked_size(slot)],
                       endpoints[i].signal->signal_dbm(slot));
    }
  }
}

TEST(Lookahead, RejectsBadConfigAndMismatchedPopulation) {
  LookaheadConfig bad;
  bad.horizon_slots = 0;
  EXPECT_THROW(LookaheadScheduler(bad, flat_forecast()), Error);
  bad = LookaheadConfig{};
  bad.prefetch_buffer_s = 1.0;  // below safety
  EXPECT_THROW(LookaheadScheduler(bad, flat_forecast()), Error);
  EXPECT_THROW(LookaheadScheduler(LookaheadConfig{}, {}), Error);
  LookaheadScheduler scheduler(LookaheadConfig{}, flat_forecast());
  EXPECT_THROW(scheduler.reset(4), Error);
}

}  // namespace
}  // namespace jstream
