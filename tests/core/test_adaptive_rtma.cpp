#include "core/adaptive_rtma.hpp"

#include <gtest/gtest.h>

#include "baselines/factory.hpp"
#include "common/error.hpp"
#include "sim/simulator.hpp"
#include "test_helpers.hpp"
#include "common/units.hpp"

namespace jstream {
namespace {

using testing::TestUser;
using testing::make_context;

TEST(AdaptiveRtma, StartsAtTargetWhenInnerBudgetUnset) {
  AdaptiveRtmaConfig config;
  config.target_energy_mj = 900.0;
  const AdaptiveRtmaScheduler scheduler(config);
  EXPECT_DOUBLE_EQ(scheduler.current_budget_mj(), 900.0);
}

TEST(AdaptiveRtma, HonorsExplicitInitialBudget) {
  AdaptiveRtmaConfig config;
  config.target_energy_mj = 900.0;
  config.rtma.energy_budget_mj = 1200.0;
  const AdaptiveRtmaScheduler scheduler(config);
  EXPECT_DOUBLE_EQ(scheduler.current_budget_mj(), 1200.0);
}

TEST(AdaptiveRtma, BudgetGrowsWhenMeasuredBelowTarget) {
  AdaptiveRtmaConfig config;
  config.target_energy_mj = 2000.0;  // far above what strong signals cost
  config.window_slots = 5;
  config.max_step = 1.5;
  AdaptiveRtmaScheduler scheduler(config);
  scheduler.reset(2);
  const double initial = scheduler.current_budget_mj();
  // Strong-signal users: serving them costs well under the target.
  const SlotContext ctx =
      make_context({TestUser{-55.0, 400.0}, TestUser{-55.0, 400.0}});
  for (int slot = 0; slot < 5; ++slot) (void)scheduler.allocate(ctx);
  EXPECT_GT(scheduler.current_budget_mj(), initial);
  EXPECT_GT(scheduler.last_window_energy_mj(), 0.0);
}

TEST(AdaptiveRtma, StepIsBoundedPerWindow) {
  AdaptiveRtmaConfig config;
  config.target_energy_mj = 100000.0;  // absurd target
  config.window_slots = 3;
  config.max_step = 1.5;
  config.max_budget_mj = 1e9;
  AdaptiveRtmaScheduler scheduler(config);
  scheduler.reset(1);
  const double initial = scheduler.current_budget_mj();
  const SlotContext ctx = make_context({TestUser{-60.0, 400.0}});
  for (int slot = 0; slot < 3; ++slot) (void)scheduler.allocate(ctx);
  EXPECT_LE(scheduler.current_budget_mj(), initial * 1.5 + 1e-9);
}

TEST(AdaptiveRtma, RecoversFromServeNobodyDeadlock) {
  // Start with a budget so strict nobody qualifies; the controller must step
  // the budget up even though no serving-slot measurement exists.
  AdaptiveRtmaConfig config;
  config.target_energy_mj = 1000.0;
  config.rtma.energy_budget_mj = 120.0;  // below the Eq. 12 feasible band
  config.window_slots = 4;
  AdaptiveRtmaScheduler scheduler(config);
  scheduler.reset(1);
  const SlotContext ctx = make_context({TestUser{-80.0, 400.0}});
  Allocation last = Allocation::zeros(1);
  for (int slot = 0; slot < 80; ++slot) last = scheduler.allocate(ctx);
  EXPECT_GT(scheduler.current_budget_mj(), 120.0);
  EXPECT_GT(last.total_units(), 0);  // service resumed
}

TEST(AdaptiveRtma, TracksTargetInFullSimulation) {
  ScenarioConfig scenario = paper_scenario(10, 3);
  scenario.video_min_mb = 30.0;
  scenario.video_max_mb = 60.0;
  scenario.max_slots = 3000;
  SchedulerOptions options;
  options.rtma_adaptive.target_energy_mj = 1000.0;
  options.rtma_adaptive.window_slots = 50;
  const RunMetrics metrics =
      simulate(scenario, make_scheduler("rtma-adaptive", options), false);
  EXPECT_DOUBLE_EQ(metrics.completion_rate(), 1.0);
  // Serving-slot transmission energy should sit near the target.
  double sum = 0.0;
  std::size_t counted = 0;
  for (const auto& user : metrics.per_user) {
    if (user.tx_slots == 0) continue;
    sum += user.trans_mj / as_double(user.tx_slots);
    ++counted;
  }
  ASSERT_GT(counted, 0u);
  const double measured = sum / as_double(counted);
  EXPECT_GT(measured, 400.0);
  EXPECT_LT(measured, 1800.0);
}

TEST(AdaptiveRtma, RejectsInvalidConfig) {
  AdaptiveRtmaConfig config;
  config.target_energy_mj = 0.0;
  EXPECT_THROW(AdaptiveRtmaScheduler{config}, Error);
  config = AdaptiveRtmaConfig{};
  config.window_slots = 0;
  EXPECT_THROW(AdaptiveRtmaScheduler{config}, Error);
  config = AdaptiveRtmaConfig{};
  config.max_step = 1.0;
  EXPECT_THROW(AdaptiveRtmaScheduler{config}, Error);
  config = AdaptiveRtmaConfig{};
  config.min_budget_mj = 10.0;
  config.max_budget_mj = 5.0;
  EXPECT_THROW(AdaptiveRtmaScheduler{config}, Error);
}

}  // namespace
}  // namespace jstream
