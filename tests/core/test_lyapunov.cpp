#include "core/lyapunov.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/error.hpp"

namespace jstream {
namespace {

TEST(LyapunovQueues, StartAtZero) {
  const LyapunovQueues queues(3);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_DOUBLE_EQ(queues.value(i), 0.0);
  EXPECT_DOUBLE_EQ(queues.lyapunov_function(), 0.0);
}

TEST(LyapunovQueues, UpdateFollowsEq16) {
  LyapunovQueues queues(2);
  // Idle slot: PC += tau.
  queues.update(0, 1.0, 0.0);
  EXPECT_DOUBLE_EQ(queues.value(0), 1.0);
  // Shard worth 3 s of playback: PC += 1 - 3 = -2 (negative = surplus).
  queues.update(0, 1.0, 3.0);
  EXPECT_DOUBLE_EQ(queues.value(0), -1.0);
  EXPECT_DOUBLE_EQ(queues.value(1), 0.0);
}

TEST(LyapunovQueues, LyapunovFunctionIsHalfSumOfSquares) {
  LyapunovQueues queues(2);
  queues.update(0, 1.0, 0.0);  // PC0 = 1
  queues.update(0, 1.0, 0.0);  // PC0 = 2
  queues.update(1, 1.0, 4.0);  // PC1 = -3
  EXPECT_DOUBLE_EQ(queues.lyapunov_function(), 0.5 * (4.0 + 9.0));
}

TEST(LyapunovQueues, ResetClearsAndResizes) {
  LyapunovQueues queues(1);
  queues.update(0, 1.0, 0.0);
  queues.reset(4);
  EXPECT_EQ(queues.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_DOUBLE_EQ(queues.value(i), 0.0);
}

TEST(LyapunovQueues, RejectsBadArguments) {
  LyapunovQueues queues(2);
  EXPECT_THROW(queues.update(5, 1.0, 0.0), Error);
  EXPECT_THROW(queues.update(0, 0.0, 0.0), Error);
  EXPECT_THROW(queues.update(0, 1.0, -1.0), Error);
  EXPECT_THROW((void)queues.value(9), Error);
}

TEST(LyapunovDriftBound, MatchesEq18) {
  // B = 1/2 sum (tau^2 + t_max^2).
  const std::vector<double> t_max{2.0, 3.0};
  EXPECT_DOUBLE_EQ(lyapunov_drift_bound(1.0, t_max), 0.5 * (1.0 + 4.0 + 1.0 + 9.0));
}

TEST(LyapunovDriftBound, RejectsBadInputs) {
  const std::vector<double> neg{-1.0};
  EXPECT_THROW((void)lyapunov_drift_bound(0.0, neg), Error);
  EXPECT_THROW((void)lyapunov_drift_bound(1.0, neg), Error);
}

}  // namespace
}  // namespace jstream
