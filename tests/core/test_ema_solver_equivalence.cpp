// Differential fuzz: the O(N*M) sliding-window DP must match the
// paper-literal O(N*M*phi_max) reference DP on randomized instances, and the
// greedy heuristic must never beat the exact optimum.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "core/ema.hpp"
#include "core/ema_fast.hpp"
#include "net/allocation.hpp"
#include "common/units.hpp"

namespace jstream {
namespace {

double total_cost(const EmaSlotCosts& costs, const Allocation& alloc) {
  double sum = 0.0;
  for (std::size_t i = 0; i < alloc.units.size(); ++i) {
    sum += ema_cost(costs, i, alloc.units[i]);
  }
  return sum;
}

void check_feasible(const Allocation& alloc, const std::vector<std::int64_t>& caps,
                    std::int64_t capacity) {
  ASSERT_EQ(alloc.units.size(), caps.size());
  std::int64_t total = 0;
  for (std::size_t i = 0; i < caps.size(); ++i) {
    ASSERT_GE(alloc.units[i], 0) << "user " << i;
    ASSERT_LE(alloc.units[i], caps[i]) << "user " << i;
    total += alloc.units[i];
  }
  ASSERT_LE(total, capacity);
}

struct Instance {
  EmaSlotCosts costs;
  std::vector<std::int64_t> caps;
  std::int64_t capacity = 0;
};

// Costs span the regimes the scheduler produces: positive and negative
// slopes (queue pressure can make transmitting cheaper than idling), idle
// costs around the tail-energy scale, occasional zero caps.
Instance random_instance(Rng& rng, std::size_t max_users, std::int64_t max_cap) {
  Instance inst;
  const auto n = checked_size(rng.uniform_int(0, checked_index(max_users)));
  inst.costs.idle_cost.resize(n);
  inst.costs.active_base.resize(n);
  inst.costs.slope.resize(n);
  inst.caps.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    inst.costs.idle_cost[i] = rng.uniform(0.0, 5.0);
    inst.costs.active_base[i] = rng.uniform(0.0, 1.0) < 0.5 ? 0.0 : rng.uniform(0.0, 2.0);
    inst.costs.slope[i] = rng.uniform(-1.0, 1.0);
    inst.caps[i] = rng.uniform(0.0, 1.0) < 0.1 ? 0 : rng.uniform_int(0, max_cap);
  }
  inst.capacity = rng.uniform_int(0, 2 * max_cap);
  return inst;
}

// Exhaustive minimum for tiny instances: enumerates every feasible phi
// vector. Ground truth independent of both DP implementations.
double brute_force_cost(const Instance& inst) {
  const std::size_t n = inst.caps.size();
  double best = 0.0;
  std::vector<std::int64_t> phi(n, 0);
  bool first = true;
  for (;;) {
    std::int64_t total = 0;
    for (std::size_t i = 0; i < n; ++i) total += phi[i];
    if (total <= inst.capacity) {
      double cost = 0.0;
      for (std::size_t i = 0; i < n; ++i) cost += ema_cost(inst.costs, i, phi[i]);
      if (first || cost < best) best = cost;
      first = false;
    }
    std::size_t k = 0;
    while (k < n && phi[k] == inst.caps[k]) phi[k++] = 0;
    if (k == n) break;
    ++phi[k];
  }
  return best;
}

constexpr double kTol = 1e-9;

TEST(EmaSolverEquivalence, FuzzMatchesReferenceDp) {
  Rng rng(20260805);
  for (int trial = 0; trial < 1000; ++trial) {
    Rng trial_rng = rng.split(static_cast<std::uint64_t>(trial));
    const Instance inst = random_instance(trial_rng, 12, 20);
    const Allocation fast = solve_min_cost_dp(inst.costs, inst.caps, inst.capacity);
    const Allocation ref =
        solve_min_cost_dp_reference(inst.costs, inst.caps, inst.capacity);
    check_feasible(fast, inst.caps, inst.capacity);
    check_feasible(ref, inst.caps, inst.capacity);
    EXPECT_NEAR(total_cost(inst.costs, fast), total_cost(inst.costs, ref), kTol)
        << "trial " << trial;
  }
}

TEST(EmaSolverEquivalence, FuzzMatchesBruteForceOnSmallInstances) {
  Rng rng(777);
  for (int trial = 0; trial < 300; ++trial) {
    Rng trial_rng = rng.split(static_cast<std::uint64_t>(trial));
    const Instance inst = random_instance(trial_rng, 4, 5);
    const Allocation fast = solve_min_cost_dp(inst.costs, inst.caps, inst.capacity);
    check_feasible(fast, inst.caps, inst.capacity);
    EXPECT_NEAR(total_cost(inst.costs, fast), brute_force_cost(inst), kTol)
        << "trial " << trial;
  }
}

TEST(EmaSolverEquivalence, GreedyNeverBeatsExact) {
  Rng rng(31337);
  for (int trial = 0; trial < 1000; ++trial) {
    Rng trial_rng = rng.split(static_cast<std::uint64_t>(trial));
    const Instance inst = random_instance(trial_rng, 12, 20);
    const Allocation exact = solve_min_cost_dp(inst.costs, inst.caps, inst.capacity);
    const Allocation greedy =
        solve_min_cost_greedy(inst.costs, inst.caps, inst.capacity);
    check_feasible(greedy, inst.caps, inst.capacity);
    EXPECT_LE(total_cost(inst.costs, exact), total_cost(inst.costs, greedy) + kTol)
        << "trial " << trial;
  }
}

TEST(EmaSolverEquivalence, WorkspaceVariantMatchesAndReusesBuffers) {
  Rng rng(99);
  EmaDpWorkspace ws;
  Allocation out;
  for (int trial = 0; trial < 200; ++trial) {
    Rng trial_rng = rng.split(static_cast<std::uint64_t>(trial));
    const Instance inst = random_instance(trial_rng, 10, 15);
    solve_min_cost_dp(inst.costs, inst.caps, inst.capacity, ws, out);
    const Allocation fresh = solve_min_cost_dp(inst.costs, inst.caps, inst.capacity);
    ASSERT_EQ(out.units.size(), fresh.units.size()) << "trial " << trial;
    EXPECT_NEAR(total_cost(inst.costs, out), total_cost(inst.costs, fresh), kTol)
        << "trial " << trial;
  }
}

TEST(EmaSolverEquivalence, LargeSingleInstanceAgreesWithReference) {
  Rng rng(4242);
  const Instance inst = random_instance(rng, 64, 64);
  const Allocation fast = solve_min_cost_dp(inst.costs, inst.caps, inst.capacity);
  const Allocation ref =
      solve_min_cost_dp_reference(inst.costs, inst.caps, inst.capacity);
  EXPECT_NEAR(total_cost(inst.costs, fast), total_cost(inst.costs, ref), 1e-8);
}

TEST(EmaSolverEquivalence, ZeroCapacityFastPathAllocatesNothing) {
  Rng rng(5);
  const Instance inst = random_instance(rng, 8, 10);
  const Allocation alloc = solve_min_cost_dp(inst.costs, inst.caps, 0);
  ASSERT_EQ(alloc.units.size(), inst.caps.size());
  for (const std::int64_t phi : alloc.units) EXPECT_EQ(phi, 0);
}

}  // namespace
}  // namespace jstream
