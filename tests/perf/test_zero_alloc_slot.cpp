// Pins the zero-allocation guarantee of the steady-state slot path: after a
// warm-up phase (workspaces grown, telemetry probes resolved), Framework::
// run_slot must perform no heap allocations. This binary replaces the global
// operator new to count allocations, so it must stay a separate test target —
// do not merge these tests into another binary.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <new>

#include "baselines/default_scheduler.hpp"
#include "core/adaptive_rtma.hpp"
#include "core/ema.hpp"
#include "core/ema_fast.hpp"
#include "core/predictive_ema.hpp"
#include "core/rtma.hpp"
#include "gateway/framework.hpp"
#include "radio/link_model.hpp"
#include "radio/signal_trace.hpp"
#include "session/service.hpp"
#include "sim/fault.hpp"
#include "test_helpers.hpp"
#include "common/units.hpp"

namespace {

std::atomic<std::uint64_t> g_alloc_count{0};

void* counted_alloc(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (size == 0) size = 1;
  void* ptr = std::malloc(size);
  if (ptr == nullptr) throw std::bad_alloc();
  return ptr;
}

void* counted_aligned_alloc(std::size_t size, std::size_t align) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  const std::size_t rounded = (size + align - 1) / align * align;
  void* ptr = std::aligned_alloc(align, rounded == 0 ? align : rounded);
  if (ptr == nullptr) throw std::bad_alloc();
  return ptr;
}

}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  return counted_aligned_alloc(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return counted_aligned_alloc(size, static_cast<std::size_t>(align));
}
void operator delete(void* ptr) noexcept { std::free(ptr); }
void operator delete[](void* ptr) noexcept { std::free(ptr); }
void operator delete(void* ptr, std::size_t) noexcept { std::free(ptr); }
void operator delete[](void* ptr, std::size_t) noexcept { std::free(ptr); }
void operator delete(void* ptr, std::align_val_t) noexcept { std::free(ptr); }
void operator delete[](void* ptr, std::align_val_t) noexcept { std::free(ptr); }
void operator delete(void* ptr, std::size_t, std::align_val_t) noexcept { std::free(ptr); }
void operator delete[](void* ptr, std::size_t, std::align_val_t) noexcept { std::free(ptr); }

namespace jstream {
namespace {

using testing::make_collector;
using testing::make_endpoints;

// Runs `slots` slots starting at `first_slot` and returns how many heap
// allocations they performed in total.
std::uint64_t allocations_over_slots(Framework& framework,
                                     std::vector<UserEndpoint>& endpoints,
                                     const BaseStation& bs, std::int64_t first_slot,
                                     std::int64_t slots) {
  const std::uint64_t before = g_alloc_count.load(std::memory_order_relaxed);
  for (std::int64_t slot = first_slot; slot < first_slot + slots; ++slot) {
    (void)framework.run_slot(slot, endpoints, bs);
  }
  return g_alloc_count.load(std::memory_order_relaxed) - before;
}

std::uint64_t steady_state_allocs(std::unique_ptr<Scheduler> scheduler) {
  // Large sessions so every user still wants data for the whole run; mixed
  // signals so the DP sees heterogeneous caps and slopes each slot.
  auto endpoints = make_endpoints({-65.0, -75.0, -85.0, -95.0, -105.0}, 400.0, 1e9);
  const BaseStation bs(2000.0);  // scarce: forces non-trivial DP decisions
  Framework framework(make_collector(), std::move(scheduler),
                      SchedulingMode::kEnergyMinimization, endpoints.size());
  constexpr std::int64_t kWarmup = 50;
  constexpr std::int64_t kMeasured = 200;
  (void)allocations_over_slots(framework, endpoints, bs, 0, kWarmup);
  return allocations_over_slots(framework, endpoints, bs, kWarmup, kMeasured);
}

TEST(ZeroAllocSlot, CounterSeesAllocations) {
  const std::uint64_t before = g_alloc_count.load(std::memory_order_relaxed);
  auto* probe = new std::vector<double>(1024);
  delete probe;
  EXPECT_GT(g_alloc_count.load(std::memory_order_relaxed), before);
}

TEST(ZeroAllocSlot, EmaDpSteadyStateIsAllocationFree) {
  EXPECT_EQ(steady_state_allocs(std::make_unique<EmaScheduler>()), 0u);
}

TEST(ZeroAllocSlot, EmaGreedySteadyStateIsAllocationFree) {
  EXPECT_EQ(steady_state_allocs(std::make_unique<EmaFastScheduler>()), 0u);
}

TEST(ZeroAllocSlot, PredictiveEmaSteadyStateIsAllocationFree) {
  // The predictive slot path: adjust_costs reads the prebuilt price tables
  // every slot (both terms fire — the forecast disagrees with the live
  // constant signals, so some users see cheaper-ahead and some see
  // below-mean). The lazy table build lands in the warm-up; the measured
  // region must stay allocation-free.
  std::vector<std::vector<double>> forecast(5, std::vector<double>(300));
  const std::vector<double> levels = {-65.0, -75.0, -85.0, -95.0, -105.0};
  for (std::size_t user = 0; user < forecast.size(); ++user) {
    for (std::size_t slot = 0; slot < forecast[user].size(); ++slot) {
      // A slow per-user zig-zag around the live level keeps the windowed
      // minimum and the window mean strictly away from the current price.
      forecast[user][slot] =
          levels[user] + ((slot / 10 + user) % 2 == 0 ? 6.0 : -6.0);
    }
  }
  PredictiveEmaConfig config;
  config.horizon_slots = 40;
  config.safety_margin_s = 0.0;  // let the deferral side engage too
  EXPECT_EQ(steady_state_allocs(std::make_unique<PredictiveEmaScheduler>(
                EmaConfig{}, config, std::move(forecast))),
            0u);
}

TEST(ZeroAllocSlot, DefaultSchedulerSteadyStateIsAllocationFree) {
  EXPECT_EQ(steady_state_allocs(std::make_unique<DefaultScheduler>()), 0u);
}

TEST(ZeroAllocSlot, RtmaSteadyStateIsAllocationFree) {
  // Finite budget so the Eq. 12 threshold bisection runs every slot too.
  RtmaConfig config;
  config.energy_budget_mj = 1000.0;
  EXPECT_EQ(steady_state_allocs(std::make_unique<RtmaScheduler>(config)), 0u);
}

TEST(ZeroAllocSlot, AdaptiveRtmaSteadyStateIsAllocationFree) {
  EXPECT_EQ(steady_state_allocs(std::make_unique<AdaptiveRtmaScheduler>()), 0u);
}

TEST(ZeroAllocSlot, SoaRebuildSteadyStateIsAllocationFree) {
  // The SoA mirror every scheduler hot loop now reads: once the lanes have
  // grown to the population, rebuilding them each slot allocates nothing.
  auto endpoints = make_endpoints({-65.0, -75.0, -85.0, -95.0, -105.0}, 400.0, 1e9);
  const BaseStation bs(2000.0);
  Framework framework(make_collector(), std::make_unique<DefaultScheduler>(),
                      SchedulingMode::kEnergyMinimization, endpoints.size());
  (void)allocations_over_slots(framework, endpoints, bs, 0, 50);
  SlotContext ctx = framework.last_context();  // the copy is the warm-up
  ctx.finalize();
  const std::uint64_t before = g_alloc_count.load(std::memory_order_relaxed);
  for (int i = 0; i < 200; ++i) ctx.finalize();
  EXPECT_EQ(g_alloc_count.load(std::memory_order_relaxed) - before, 0u);
}

TEST(ZeroAllocSlot, EmaWarmStartReuseEngagesWithoutAllocating) {
  // The cross-slot reuse layers (memo, separable path, checkpointed DP) keep
  // all their state in grow-only workspace buffers: the steady state must be
  // allocation-free even while the reuse machinery is actively saving and
  // consuming warm state every slot.
  auto scheduler = std::make_unique<EmaScheduler>();
  const EmaScheduler* ema = scheduler.get();
  auto endpoints = make_endpoints({-65.0, -75.0, -85.0, -95.0, -105.0}, 400.0, 1e9);
  const BaseStation bs(2000.0);
  Framework framework(make_collector(), std::move(scheduler),
                      SchedulingMode::kEnergyMinimization, endpoints.size());
  (void)allocations_over_slots(framework, endpoints, bs, 0, 50);
  EXPECT_EQ(allocations_over_slots(framework, endpoints, bs, 50, 200), 0u);
  const EmaDpWorkspace& ws = ema->dp_workspace();
  EXPECT_GT(ws.dp_solves + ws.separable_hits + ws.memo_hits, 0);
  EXPECT_EQ(ema->solve_certificate()->certified_slots, 0);  // exact mode
}

TEST(ZeroAllocSlot, EmaCoarsenedSteadyStateIsAllocationFree) {
  // Certified coarsening (coarsen_units = 8): coarse instance build, coarse
  // DP, refinement and the Lagrangian certificate all run out of the
  // scheduler's grow-only coarse workspace.
  EmaConfig config;
  config.coarsen_units = 8;
  auto scheduler = std::make_unique<EmaScheduler>(config);
  const EmaScheduler* ema = scheduler.get();
  auto endpoints = make_endpoints({-65.0, -75.0, -85.0, -95.0, -105.0}, 400.0, 1e9);
  const BaseStation bs(2000.0);
  Framework framework(make_collector(), std::move(scheduler),
                      SchedulingMode::kEnergyMinimization, endpoints.size());
  (void)allocations_over_slots(framework, endpoints, bs, 0, 50);
  EXPECT_EQ(allocations_over_slots(framework, endpoints, bs, 50, 200), 0u);
  const SolveCertificate* cert = ema->solve_certificate();
  ASSERT_NE(cert, nullptr);
  EXPECT_EQ(cert->exact_slots + cert->certified_slots, 250);
  EXPECT_GE(cert->gap_max, 0.0);
}

TEST(ZeroAllocSlot, FaultedSlotPathIsAllocationFree) {
  // Degraded-cell path: the FaultInjector's degrade/reconcile hooks run on
  // every slot with all four fault families firing inside the measured
  // region — workspaces are sized at construction, window queries are binary
  // searches, so the steady state must stay allocation-free.
  auto endpoints = make_endpoints({-65.0, -75.0, -85.0, -95.0, -105.0}, 400.0, 1e9);
  const BaseStation bs(2000.0);
  FaultSchedule schedule(endpoints.size(), /*horizon=*/300, /*outage_dbm=*/-112.0);
  for (std::size_t user = 0; user < endpoints.size(); ++user) {
    // Alternating deep fades and stale windows, staggered per user.
    for (std::int64_t begin = 60 + checked_index(user);
         begin + 14 < 300; begin += 24) {
      schedule.add_outage(user, {begin, begin + 6});
      schedule.add_stale_window(user, {begin + 8, begin + 14});
    }
  }
  for (std::int64_t begin = 50; begin + 10 < 300; begin += 40) {
    schedule.add_capacity_window({begin, begin + 10}, 0.5);
  }
  schedule.set_departure(0, 120);  // aborts mid-measurement
  endpoints[0].depart_at(120);     // the endpoint carries the abort slot
  FaultInjector injector(
      std::make_shared<const FaultSchedule>(std::move(schedule)));
  Framework framework(make_collector(), std::make_unique<EmaScheduler>(),
                      SchedulingMode::kEnergyMinimization, endpoints.size());
  framework.attach_fault_hook(&injector);
  (void)allocations_over_slots(framework, endpoints, bs, 0, 50);
  EXPECT_EQ(allocations_over_slots(framework, endpoints, bs, 50, 200), 0u);
}

TEST(ZeroAllocSlot, ServiceModeSteadyStateIsAllocationFree) {
  // Online service mode: arrivals land in the first three slots (trace
  // process), sessions are far too large to finish, so every measured slot is
  // quiescent — the event boundary (bind/release) is the only place the
  // service layer may allocate, and none occurs in the window.
  ScenarioConfig cell = paper_scenario(/*users=*/5, /*seed=*/77);
  cell.max_slots = 300;
  cell.video_min_mb = 5000.0;  // never completes inside the horizon
  cell.video_max_mb = 6000.0;
  ServiceConfig config;
  config.cell = cell;
  config.arrivals.kind = ArrivalKind::kTrace;
  config.arrivals.trace_counts = {2, 1, 2};
  ServiceSimulator simulator(config, std::make_unique<EmaScheduler>());

  for (std::int64_t slot = 0; slot < 50; ++slot) (void)simulator.step();
  EXPECT_EQ(simulator.active_sessions(), 5u);
  const std::uint64_t before = g_alloc_count.load(std::memory_order_relaxed);
  for (std::int64_t slot = 0; slot < 200; ++slot) (void)simulator.step();
  EXPECT_EQ(g_alloc_count.load(std::memory_order_relaxed) - before, 0u);
}

TEST(ZeroAllocSlot, ServiceSessionReleaseIsAllocationFree) {
  // Mid-window aborts exercise the release path (scan_releases, free-list
  // push, session-end accounting): with the free stack reserved at capacity
  // and records off, releasing sessions allocates nothing either.
  ScenarioConfig cell = paper_scenario(/*users=*/5, /*seed=*/78);
  cell.max_slots = 300;
  cell.video_min_mb = 5000.0;
  cell.video_max_mb = 6000.0;
  cell.faults.departure_fraction = 1.0;  // every bound session aborts eventually
  ServiceConfig config;
  config.cell = cell;
  config.arrivals.kind = ArrivalKind::kTrace;
  config.arrivals.trace_counts = {2, 1, 2};
  ServiceSimulator simulator(config, std::make_unique<EmaScheduler>());

  for (std::int64_t slot = 0; slot < 50; ++slot) (void)simulator.step();
  const std::uint64_t before = g_alloc_count.load(std::memory_order_relaxed);
  for (std::int64_t slot = 0; slot < 250; ++slot) (void)simulator.step();
  EXPECT_EQ(g_alloc_count.load(std::memory_order_relaxed) - before, 0u);
  const ServiceResult result = simulator.finish();
  EXPECT_GT(result.service.aborted + result.service.in_flight_at_end, 0);
}

TEST(ZeroAllocSlot, TracedSlotPathIsAllocationFree) {
  // Campaign path: endpoints read the precomputed SoA matrices instead of
  // driving their SignalModels — still zero allocations per slot.
  auto endpoints = make_endpoints({-65.0, -75.0, -85.0, -95.0, -105.0}, 400.0, 1e9);
  SignalTraceSet trace(endpoints.size(), /*slots=*/300);
  for (std::size_t user = 0; user < endpoints.size(); ++user) {
    trace.fill_user(user, *endpoints[user].signal);
  }
  trace.derive_link(make_paper_link_model());
  for (std::size_t user = 0; user < endpoints.size(); ++user) {
    endpoints[user].attach_trace(&trace, user);
  }
  const BaseStation bs(2000.0);
  Framework framework(make_collector(), std::make_unique<DefaultScheduler>(),
                      SchedulingMode::kEnergyMinimization, endpoints.size());
  (void)allocations_over_slots(framework, endpoints, bs, 0, 50);
  EXPECT_EQ(allocations_over_slots(framework, endpoints, bs, 50, 200), 0u);
}

}  // namespace
}  // namespace jstream
