#include "net/allocation.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/error.hpp"

namespace jstream {
namespace {

TEST(Allocation, ZerosAndTotals) {
  Allocation alloc = Allocation::zeros(4);
  EXPECT_EQ(alloc.user_count(), 4u);
  EXPECT_EQ(alloc.total_units(), 0);
  alloc.units = {1, 2, 3, 4};
  EXPECT_EQ(alloc.total_units(), 10);
}

TEST(CheckFeasible, AcceptsWithinBothConstraints) {
  Allocation alloc;
  alloc.units = {2, 3, 0};
  const std::vector<std::int64_t> caps{5, 3, 1};
  const FeasibilityReport report = check_feasible(alloc, caps, 10);
  EXPECT_TRUE(report.feasible) << report.violation;
}

TEST(CheckFeasible, RejectsConstraint1Violation) {
  Allocation alloc;
  alloc.units = {6, 0};
  const std::vector<std::int64_t> caps{5, 5};
  const FeasibilityReport report = check_feasible(alloc, caps, 100);
  EXPECT_FALSE(report.feasible);
  EXPECT_NE(report.violation.find("constraint (1)"), std::string::npos);
}

TEST(CheckFeasible, RejectsConstraint2Violation) {
  Allocation alloc;
  alloc.units = {5, 5};
  const std::vector<std::int64_t> caps{5, 5};
  const FeasibilityReport report = check_feasible(alloc, caps, 9);
  EXPECT_FALSE(report.feasible);
  EXPECT_NE(report.violation.find("constraint (2)"), std::string::npos);
}

TEST(CheckFeasible, RejectsNegativeAndSizeMismatch) {
  Allocation alloc;
  alloc.units = {-1, 0};
  const std::vector<std::int64_t> caps{5, 5};
  EXPECT_FALSE(check_feasible(alloc, caps, 10).feasible);

  const std::vector<std::int64_t> short_caps{5};
  EXPECT_FALSE(check_feasible(alloc, short_caps, 10).feasible);
}

TEST(CheckFeasible, BoundaryExactlyAtCapsIsFeasible) {
  Allocation alloc;
  alloc.units = {5, 5};
  const std::vector<std::int64_t> caps{5, 5};
  EXPECT_TRUE(check_feasible(alloc, caps, 10).feasible);
}

TEST(RequireFeasible, ThrowsWithDescription) {
  Allocation alloc;
  alloc.units = {7};
  const std::vector<std::int64_t> caps{5};
  EXPECT_THROW(require_feasible(alloc, caps, 10), Error);
  EXPECT_NO_THROW(require_feasible(Allocation::zeros(1), caps, 10));
}

}  // namespace
}  // namespace jstream
