#include "net/transmission.hpp"

#include <gtest/gtest.h>

namespace jstream {
namespace {

TEST(SlotParams, LinkUnitsFloorsEq1) {
  const SlotParams params{1.0, 100.0};
  EXPECT_EQ(params.link_units(450.0), 4);   // floor(450/100)
  EXPECT_EQ(params.link_units(499.9), 4);
  EXPECT_EQ(params.link_units(500.0), 5);
  EXPECT_EQ(params.link_units(99.0), 0);
}

TEST(SlotParams, CapacityUnitsFloorsEq2) {
  const SlotParams params{1.0, 100.0};
  EXPECT_EQ(params.capacity_units(20000.0), 200);
  EXPECT_EQ(params.capacity_units(20050.0), 200);
}

TEST(SlotParams, NeedUnitsCeils) {
  const SlotParams params{1.0, 100.0};
  EXPECT_EQ(params.need_units(300.0), 3);
  EXPECT_EQ(params.need_units(301.0), 4);
  EXPECT_EQ(params.need_units(600.0), 6);
}

TEST(SlotParams, SlotLengthScalesBounds) {
  const SlotParams params{2.0, 100.0};
  EXPECT_EQ(params.link_units(450.0), 9);   // floor(2*450/100)
  EXPECT_EQ(params.need_units(450.0), 9);
}

TEST(SlotParams, PlaybackSecondsIsUnitsDeltaOverBitrate) {
  const SlotParams params{1.0, 100.0};
  EXPECT_DOUBLE_EQ(params.playback_seconds(5, 500.0), 1.0);
  EXPECT_DOUBLE_EQ(params.playback_seconds(3, 300.0), 1.0);
  EXPECT_DOUBLE_EQ(params.playback_seconds(0, 300.0), 0.0);
}

TEST(SlotParams, UnitsToKb) {
  const SlotParams params{1.0, 100.0};
  EXPECT_DOUBLE_EQ(params.units_to_kb(7), 700.0);
}

}  // namespace
}  // namespace jstream
