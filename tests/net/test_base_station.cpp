#include "net/base_station.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace jstream {
namespace {

TEST(BaseStation, ConstantCapacity) {
  const BaseStation bs(20000.0);
  EXPECT_DOUBLE_EQ(bs.capacity_kbps(0), 20000.0);
  EXPECT_DOUBLE_EQ(bs.capacity_kbps(9999), 20000.0);
}

TEST(BaseStation, CapacityUnitsUsesSlotParams) {
  const BaseStation bs(20000.0);
  EXPECT_EQ(bs.capacity_units(0, SlotParams{1.0, 100.0}), 200);
  EXPECT_EQ(bs.capacity_units(0, SlotParams{1.0, 150.0}), 133);
}

TEST(BaseStation, TimeVaryingProfile) {
  const BaseStation bs([](std::int64_t slot) { return slot % 2 == 0 ? 10000.0 : 20000.0; });
  EXPECT_DOUBLE_EQ(bs.capacity_kbps(0), 10000.0);
  EXPECT_DOUBLE_EQ(bs.capacity_kbps(1), 20000.0);
}

TEST(BaseStation, RejectsInvalidInputs) {
  EXPECT_THROW(BaseStation(0.0), Error);
  EXPECT_THROW(BaseStation(-5.0), Error);
  const BaseStation bs(100.0);
  EXPECT_THROW((void)bs.capacity_kbps(-1), Error);
  const BaseStation broken([](std::int64_t) { return 0.0; });
  EXPECT_THROW((void)broken.capacity_kbps(0), Error);
}

}  // namespace
}  // namespace jstream
