#include "radio/signal_trace_io.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "radio/link_model.hpp"

namespace jstream {
namespace {

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

// A small derived trace set with varied, reproducible content.
SignalTraceSet make_set(std::size_t users = 3, std::int64_t slots = 17) {
  SignalTraceSet set(users, slots);
  SineSignalParams params;
  const Rng rng(42);
  for (std::size_t user = 0; user < users; ++user) {
    params.phase_radians = 0.37 * as_double(user + 1);
    SineSignalModel model(params, rng.split(user));
    set.fill_user(user, model);
  }
  set.derive_link(make_paper_link_model());
  return set;
}

// Flips one byte at `offset` in the file.
void corrupt_byte(const std::string& path, std::int64_t offset) {
  std::fstream file(path, std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(file.is_open());
  file.seekg(offset);
  char byte = 0;
  file.read(&byte, 1);
  byte = static_cast<char>(byte ^ 0x5a);
  file.seekp(offset);
  file.write(&byte, 1);
}

TEST(SignalTraceIo, RoundTripsThroughDisk) {
  const std::vector<double> trace{-50.0, -73.25, -110.0, -88.125};
  const std::string path = temp_path("jstream_trace_rt.txt");
  save_signal_trace(path, trace);
  const std::vector<double> loaded = load_signal_trace(path);
  ASSERT_EQ(loaded.size(), trace.size());
  for (std::size_t i = 0; i < trace.size(); ++i) {
    EXPECT_DOUBLE_EQ(loaded[i], trace[i]);
  }
  std::filesystem::remove(path);
}

TEST(SignalTraceIo, SkipsCommentsAndBlanks) {
  const std::string path = temp_path("jstream_trace_comments.txt");
  {
    std::ofstream out(path);
    out << "# header\n\n  -60.5\n# mid comment\n-70\n   \n";
  }
  const std::vector<double> loaded = load_signal_trace(path);
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_DOUBLE_EQ(loaded[0], -60.5);
  EXPECT_DOUBLE_EQ(loaded[1], -70.0);
  std::filesystem::remove(path);
}

TEST(SignalTraceIo, RejectsGarbageAndEmpty) {
  const std::string path = temp_path("jstream_trace_bad.txt");
  {
    std::ofstream out(path);
    out << "-60.5 trailing\n";
  }
  EXPECT_THROW((void)load_signal_trace(path), Error);
  {
    std::ofstream out(path);
    out << "not-a-number\n";
  }
  EXPECT_THROW((void)load_signal_trace(path), Error);
  {
    std::ofstream out(path);
    out << "# only comments\n";
  }
  EXPECT_THROW((void)load_signal_trace(path), Error);
  EXPECT_THROW((void)load_signal_trace("/no/such/dir/trace.txt"), Error);
  EXPECT_THROW(save_signal_trace(path, {}), Error);
  std::filesystem::remove(path);
}

TEST(TraceSetFile, RoundTripsBitExactAndZeroCopy) {
  const SignalTraceSet set = make_set();
  const std::string path = temp_path("jstream_traceset_rt.jst");
  const std::uint64_t fingerprint = 0xfeedface12345678ULL;
  save_trace_set(path, set, fingerprint);

  const TraceSetFileInfo info = probe_trace_set(path);
  EXPECT_EQ(info.version, kTraceSetFileVersion);
  EXPECT_EQ(info.fingerprint, fingerprint);
  EXPECT_EQ(info.users, set.users());
  EXPECT_EQ(info.slots, set.slots());
  EXPECT_EQ(info.payload_bytes, set.total_bytes());

  const std::shared_ptr<const SignalTraceSet> loaded =
      load_trace_set(path, fingerprint);
  ASSERT_NE(loaded, nullptr);
  EXPECT_TRUE(loaded->mapped());
  EXPECT_TRUE(loaded->link_derived());
  ASSERT_EQ(loaded->users(), set.users());
  ASSERT_EQ(loaded->slots(), set.slots());
  for (std::size_t user = 0; user < set.users(); ++user) {
    for (std::int64_t slot = 0; slot < set.slots(); ++slot) {
      EXPECT_EQ(loaded->signal_dbm(user, slot), set.signal_dbm(user, slot));
      EXPECT_EQ(loaded->throughput_kbps(user, slot), set.throughput_kbps(user, slot));
      EXPECT_EQ(loaded->energy_per_kb(user, slot), set.energy_per_kb(user, slot));
    }
  }
  std::filesystem::remove(path);
}

TEST(TraceSetFile, MappedSetOutlivesTheFileAndRefusesMutation) {
  const SignalTraceSet set = make_set();
  const std::string path = temp_path("jstream_traceset_unlink.jst");
  save_trace_set(path, set, 1);
  const std::shared_ptr<const SignalTraceSet> loaded = load_trace_set(path, 1);
  // POSIX keeps the mapping alive after the unlink; reads must still work.
  std::filesystem::remove(path);
  EXPECT_EQ(loaded->signal_dbm(0, 0), set.signal_dbm(0, 0));
  EXPECT_EQ(loaded->energy_per_kb(2, 16), set.energy_per_kb(2, 16));
}

TEST(TraceSetFile, SaveRejectsUnderivedSetsAndBadPaths) {
  SignalTraceSet underived(2, 5);
  EXPECT_THROW(save_trace_set(temp_path("jstream_traceset_u.jst"), underived, 1),
               Error);
  const SignalTraceSet set = make_set();
  EXPECT_THROW(save_trace_set("/no/such/dir/set.jst", set, 1), Error);
}

TEST(TraceSetFile, RejectsFingerprintMismatch) {
  const std::string path = temp_path("jstream_traceset_fp.jst");
  save_trace_set(path, make_set(), /*fingerprint=*/7);
  EXPECT_THROW((void)load_trace_set(path, /*expected_fingerprint=*/8),
               TraceFileError);
  // The right fingerprint still loads: the reject above did not destroy it.
  EXPECT_NE(load_trace_set(path, 7), nullptr);
  std::filesystem::remove(path);
}

TEST(TraceSetFile, RejectsCorruptMagicVersionAndHeader) {
  const std::string path = temp_path("jstream_traceset_hdr.jst");
  for (const std::int64_t offset : {0,   // magic
                                    8,   // schema version
                                    12,  // endianness tag
                                    24,  // users
                                    56}) {  // header checksum
    save_trace_set(path, make_set(), 1);
    corrupt_byte(path, offset);
    EXPECT_THROW((void)probe_trace_set(path), TraceFileError) << "offset " << offset;
    EXPECT_THROW((void)load_trace_set(path, 1), TraceFileError)
        << "offset " << offset;
  }
  std::filesystem::remove(path);
}

TEST(TraceSetFile, RejectsPayloadCorruption) {
  const std::string path = temp_path("jstream_traceset_bits.jst");
  save_trace_set(path, make_set(), 1);
  // Header (incl. payload checksum) intact, one payload byte flipped.
  corrupt_byte(path, 64 + 11);
  EXPECT_NO_THROW((void)probe_trace_set(path));  // header-only probe can't see it
  EXPECT_THROW((void)load_trace_set(path, 1), TraceFileError);
  std::filesystem::remove(path);
}

TEST(TraceSetFile, RejectsTruncation) {
  const std::string path = temp_path("jstream_traceset_trunc.jst");
  save_trace_set(path, make_set(), 1);
  const std::uintmax_t full = std::filesystem::file_size(path);
  // Cut mid-payload, then mid-header.
  std::filesystem::resize_file(path, full - 16);
  EXPECT_THROW((void)probe_trace_set(path), TraceFileError);
  EXPECT_THROW((void)load_trace_set(path, 1), TraceFileError);
  std::filesystem::resize_file(path, 32);
  EXPECT_THROW((void)probe_trace_set(path), TraceFileError);
  EXPECT_THROW((void)load_trace_set(path, 1), TraceFileError);
  std::filesystem::remove(path);
  // Missing file is an Error (open failure), not silent.
  EXPECT_THROW((void)load_trace_set(path, 1), Error);
}

TEST(SignalTraceIo, RecordsFromAModel) {
  SineSignalParams params;
  params.noise_stddev_db = 0.0;
  SineSignalModel model(params, Rng(1));
  const std::vector<double> trace = record_signal_trace(model, 50);
  ASSERT_EQ(trace.size(), 50u);
  // Replay matches the source model sample for sample.
  TraceSignalModel replay(trace);
  SineSignalModel fresh(params, Rng(1));
  for (std::int64_t slot = 0; slot < 50; ++slot) {
    EXPECT_DOUBLE_EQ(replay.signal_dbm(slot), fresh.signal_dbm(slot));
  }
  EXPECT_THROW((void)record_signal_trace(model, 0), Error);
}

}  // namespace
}  // namespace jstream
