#include "radio/signal_trace_io.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace jstream {
namespace {

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(SignalTraceIo, RoundTripsThroughDisk) {
  const std::vector<double> trace{-50.0, -73.25, -110.0, -88.125};
  const std::string path = temp_path("jstream_trace_rt.txt");
  save_signal_trace(path, trace);
  const std::vector<double> loaded = load_signal_trace(path);
  ASSERT_EQ(loaded.size(), trace.size());
  for (std::size_t i = 0; i < trace.size(); ++i) {
    EXPECT_DOUBLE_EQ(loaded[i], trace[i]);
  }
  std::filesystem::remove(path);
}

TEST(SignalTraceIo, SkipsCommentsAndBlanks) {
  const std::string path = temp_path("jstream_trace_comments.txt");
  {
    std::ofstream out(path);
    out << "# header\n\n  -60.5\n# mid comment\n-70\n   \n";
  }
  const std::vector<double> loaded = load_signal_trace(path);
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_DOUBLE_EQ(loaded[0], -60.5);
  EXPECT_DOUBLE_EQ(loaded[1], -70.0);
  std::filesystem::remove(path);
}

TEST(SignalTraceIo, RejectsGarbageAndEmpty) {
  const std::string path = temp_path("jstream_trace_bad.txt");
  {
    std::ofstream out(path);
    out << "-60.5 trailing\n";
  }
  EXPECT_THROW((void)load_signal_trace(path), Error);
  {
    std::ofstream out(path);
    out << "not-a-number\n";
  }
  EXPECT_THROW((void)load_signal_trace(path), Error);
  {
    std::ofstream out(path);
    out << "# only comments\n";
  }
  EXPECT_THROW((void)load_signal_trace(path), Error);
  EXPECT_THROW((void)load_signal_trace("/no/such/dir/trace.txt"), Error);
  EXPECT_THROW(save_signal_trace(path, {}), Error);
  std::filesystem::remove(path);
}

TEST(SignalTraceIo, RecordsFromAModel) {
  SineSignalParams params;
  params.noise_stddev_db = 0.0;
  SineSignalModel model(params, Rng(1));
  const std::vector<double> trace = record_signal_trace(model, 50);
  ASSERT_EQ(trace.size(), 50u);
  // Replay matches the source model sample for sample.
  TraceSignalModel replay(trace);
  SineSignalModel fresh(params, Rng(1));
  for (std::int64_t slot = 0; slot < 50; ++slot) {
    EXPECT_DOUBLE_EQ(replay.signal_dbm(slot), fresh.signal_dbm(slot));
  }
  EXPECT_THROW((void)record_signal_trace(model, 0), Error);
}

}  // namespace
}  // namespace jstream
