#include "radio/radio_profile.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace jstream {
namespace {

TEST(RadioProfile, Paper3gMatchesSectionVI) {
  const RadioProfile p = paper_3g_profile();
  EXPECT_EQ(p.kind, RrcKind::kThreeState3G);
  EXPECT_DOUBLE_EQ(p.p_dch_mw, 732.83);
  EXPECT_DOUBLE_EQ(p.p_fach_mw, 388.88);
  EXPECT_DOUBLE_EQ(p.t1_s, 3.29);
  EXPECT_DOUBLE_EQ(p.t2_s, 4.02);
  EXPECT_FALSE(p.continuous_tail);
}

TEST(RadioProfile, DerivedQuantities) {
  const RadioProfile p = paper_3g_profile();
  EXPECT_NEAR(p.tail_duration_s(), 7.31, 1e-9);
  EXPECT_NEAR(p.max_tail_energy_mj(), 732.83 * 3.29 + 388.88 * 4.02, 1e-9);
}

TEST(RadioProfile, LteIsTwoState) {
  const RadioProfile p = lte_profile();
  EXPECT_EQ(p.kind, RrcKind::kTwoStateLte);
  EXPECT_DOUBLE_EQ(p.t2_s, 0.0);
  EXPECT_GT(p.p_dch_mw, 0.0);
  EXPECT_NO_THROW(validate(p));
}

TEST(RadioProfile, ValidateRejectsNegativeParameters) {
  RadioProfile p = paper_3g_profile();
  p.p_dch_mw = -1.0;
  EXPECT_THROW(validate(p), Error);
  p = paper_3g_profile();
  p.t1_s = -0.5;
  EXPECT_THROW(validate(p), Error);
}

TEST(RadioProfile, ValidateRejectsLteWithFachTimer) {
  RadioProfile p = lte_profile();
  p.t2_s = 2.0;
  EXPECT_THROW(validate(p), Error);
}

}  // namespace
}  // namespace jstream
