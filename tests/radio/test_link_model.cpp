#include "radio/link_model.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace jstream {
namespace {

TEST(LinearThroughputModel, MatchesPaperFitEq24) {
  const LinearThroughputModel model;
  // v(sig) = 65.8 * sig + 7567 KB/s at the sweep endpoints.
  EXPECT_NEAR(model.throughput_kbps(-110.0), 329.0, 1e-9);
  EXPECT_NEAR(model.throughput_kbps(-50.0), 4277.0, 1e-9);
  EXPECT_NEAR(model.throughput_kbps(-80.0), 2303.0, 1e-9);
}

TEST(LinearThroughputModel, InverseRoundTrips) {
  const LinearThroughputModel model;
  for (double sig : {-110.0, -93.5, -72.0, -50.0}) {
    EXPECT_NEAR(model.signal_for_throughput(model.throughput_kbps(sig)), sig, 1e-9);
  }
}

TEST(LinearThroughputModel, RejectsNonPositiveSlopeOrThroughput) {
  EXPECT_THROW(LinearThroughputModel(-1.0, 100.0), Error);
  const LinearThroughputModel model;
  EXPECT_THROW((void)model.throughput_kbps(-200.0), Error);  // fit goes negative
}

TEST(FittedPowerModel, MatchesPaperFitEq24) {
  const LinkModel link = make_paper_link_model();
  // P(sig) = -0.167 + 1560 / v(sig) mJ/KB.
  EXPECT_NEAR(link.power->energy_per_kb(-110.0), -0.167 + 1560.0 / 329.0, 1e-9);
  EXPECT_NEAR(link.power->energy_per_kb(-50.0), -0.167 + 1560.0 / 4277.0, 1e-9);
}

TEST(FittedPowerModel, PerByteCostDecreasesWithSignal) {
  const LinkModel link = make_paper_link_model();
  double prev = link.power->energy_per_kb(-110.0);
  for (double sig = -105.0; sig <= -50.0; sig += 5.0) {
    const double cur = link.power->energy_per_kb(sig);
    EXPECT_LT(cur, prev);
    prev = cur;
  }
}

TEST(FittedPowerModel, FullRatePowerDecreasesWithSignal) {
  // P(sig)*v(sig) = -0.167*v + 1560 mW: a weak-signal slot at full rate burns
  // MORE instantaneous power than a strong-signal one (Eq. 12's premise).
  auto throughput = std::make_shared<const LinearThroughputModel>();
  const FittedPowerModel power(throughput);
  EXPECT_GT(power.full_rate_power_mw(-110.0), power.full_rate_power_mw(-50.0));
  EXPECT_NEAR(power.full_rate_power_mw(-110.0), -0.167 * 329.0 + 1560.0, 1e-9);
}

TEST(FittedPowerModel, RejectsNullAndBadScale) {
  auto throughput = std::make_shared<const LinearThroughputModel>();
  EXPECT_THROW(FittedPowerModel(nullptr), Error);
  EXPECT_THROW(FittedPowerModel(throughput, -0.167, -5.0), Error);
}

TEST(MakePaperLinkModel, IsComplete) {
  const LinkModel link = make_paper_link_model();
  ASSERT_NE(link.throughput, nullptr);
  ASSERT_NE(link.power, nullptr);
}

}  // namespace
}  // namespace jstream
