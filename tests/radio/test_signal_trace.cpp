// Differential correctness of batched trace generation: for every signal
// model kind, filling a SignalTraceSet row must be bit-identical (EXPECT_EQ
// on the doubles, no tolerance) to querying an identically-constructed model
// slot-by-slot — the cached campaign path is only sound if the batch and the
// incremental path read the exact same RNG stream in the exact same order.

#include "radio/signal_trace.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "radio/link_model.hpp"
#include "radio/signal_model.hpp"

namespace jstream {
namespace {

constexpr std::int64_t kSlots = 400;

// Fills row 0 of a fresh single-user set from `batch` and checks it against
// slot-by-slot queries of `incremental` (an identically-seeded twin).
void expect_batch_matches_incremental(SignalModel& batch, SignalModel& incremental) {
  SignalTraceSet set(/*users=*/1, kSlots);
  set.fill_user(0, batch);
  for (std::int64_t slot = 0; slot < kSlots; ++slot) {
    EXPECT_EQ(set.signal_dbm(0, slot), incremental.signal_dbm(slot))
        << "slot " << slot;
  }
}

TEST(SignalTraceSet, SineBatchBitIdenticalToIncremental) {
  SineSignalParams params;
  params.phase_radians = 1.25;
  const Rng rng(2024);
  SineSignalModel batch(params, rng.split(7));
  SineSignalModel incremental(params, rng.split(7));
  expect_batch_matches_incremental(batch, incremental);
}

TEST(SignalTraceSet, GaussMarkovBatchBitIdenticalToIncremental) {
  GaussMarkovSignalModel::Params params;
  const Rng rng(99);
  GaussMarkovSignalModel batch(params, rng.split(3));
  GaussMarkovSignalModel incremental(params, rng.split(3));
  expect_batch_matches_incremental(batch, incremental);
}

TEST(SignalTraceSet, TraceBatchBitIdenticalToIncremental) {
  const std::vector<double> trace{-60.0, -72.5, -81.25, -99.0, -105.5};
  TraceSignalModel batch(trace);
  TraceSignalModel incremental(trace);
  expect_batch_matches_incremental(batch, incremental);
}

TEST(SignalTraceSet, ConstantBatchBitIdenticalToIncremental) {
  ConstantSignalModel batch(-77.0);
  ConstantSignalModel incremental(-77.0);
  expect_batch_matches_incremental(batch, incremental);
}

TEST(SignalTraceSet, DeriveLinkMatchesModelEvaluations) {
  GaussMarkovSignalModel::Params params;
  const Rng rng(5);
  GaussMarkovSignalModel model(params, rng.split(1));
  SignalTraceSet set(/*users=*/1, kSlots);
  set.fill_user(0, model);
  EXPECT_FALSE(set.link_derived());

  const LinkModel link = make_paper_link_model();
  set.derive_link(link);
  ASSERT_TRUE(set.link_derived());
  for (std::int64_t slot = 0; slot < kSlots; ++slot) {
    const double sig = set.signal_dbm(0, slot);
    EXPECT_EQ(set.throughput_kbps(0, slot), link.throughput->throughput_kbps(sig));
    EXPECT_EQ(set.energy_per_kb(0, slot), link.power->energy_per_kb(sig));
  }
}

TEST(SignalTraceSet, SlotMajorLayoutAndAccounting) {
  SignalTraceSet set(/*users=*/3, /*slots=*/5);
  // index() is slot-major: consecutive users of one slot are adjacent.
  EXPECT_EQ(set.index(0, 0), 0u);
  EXPECT_EQ(set.index(2, 0), 2u);
  EXPECT_EQ(set.index(0, 1), 3u);
  EXPECT_EQ(set.total_bytes(), 3u * 8u * 3u * 5u);
  EXPECT_EQ(SignalTraceSet::estimate_bytes(3, 5), set.total_bytes());
}

TEST(SignalTraceSet, RejectsInvalidUse) {
  EXPECT_THROW(SignalTraceSet(0, 10), Error);
  EXPECT_THROW(SignalTraceSet(1, 0), Error);
  SignalTraceSet set(/*users=*/1, /*slots=*/4);
  ConstantSignalModel model(-70.0);
  EXPECT_THROW(set.fill_user(1, model), Error);
  EXPECT_THROW((void)set.signal_dbm(0, 4), Error);
  // Derived accessors refuse to serve before derive_link.
  set.fill_user(0, model);
  EXPECT_THROW((void)set.throughput_kbps(0, 0), Error);
}

}  // namespace
}  // namespace jstream
