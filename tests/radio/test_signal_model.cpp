#include "radio/signal_model.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "common/error.hpp"
#include "common/units.hpp"

namespace jstream {
namespace {

TEST(ConstantSignalModel, AlwaysSameValue) {
  ConstantSignalModel model(-75.0);
  EXPECT_DOUBLE_EQ(model.signal_dbm(0), -75.0);
  EXPECT_DOUBLE_EQ(model.signal_dbm(9999), -75.0);
}

TEST(ConstantSignalModel, RejectsPositiveDbm) {
  EXPECT_THROW(ConstantSignalModel(5.0), Error);
}

TEST(SineSignalModel, StaysWithinClampRange) {
  SineSignalParams params;
  params.noise_stddev_db = 8.0;
  SineSignalModel model(params, Rng(3));
  for (std::int64_t slot = 0; slot < 5000; ++slot) {
    const double sig = model.signal_dbm(slot);
    EXPECT_GE(sig, params.min_dbm);
    EXPECT_LE(sig, params.max_dbm);
  }
}

TEST(SineSignalModel, NoiselessFollowsSine) {
  SineSignalParams params;
  params.noise_stddev_db = 0.0;
  params.period_slots = 100.0;
  SineSignalModel model(params, Rng(1));
  const double mid = 0.5 * (params.min_dbm + params.max_dbm);
  const double amp = 0.5 * (params.max_dbm - params.min_dbm);
  for (std::int64_t slot : {0, 25, 50, 75}) {
    const double expected =
        mid + amp * std::sin(2.0 * std::numbers::pi * as_double(slot) / 100.0);
    EXPECT_NEAR(model.signal_dbm(slot), expected, 1e-9);
  }
}

TEST(SineSignalModel, PhaseShiftMovesTheWave) {
  SineSignalParams a;
  a.noise_stddev_db = 0.0;
  SineSignalParams b = a;
  b.phase_radians = std::numbers::pi;
  SineSignalModel model_a(a, Rng(1));
  SineSignalModel model_b(b, Rng(1));
  // Opposite phases mirror around the midpoint.
  const double mid = 0.5 * (a.min_dbm + a.max_dbm);
  const double va = model_a.signal_dbm(150);
  const double vb = model_b.signal_dbm(150);
  EXPECT_NEAR(va - mid, -(vb - mid), 1e-9);
}

TEST(SineSignalModel, RepeatedQueriesOfSameSlotMatch) {
  SineSignalParams params;
  SineSignalModel model(params, Rng(5));
  const double first = model.signal_dbm(10);
  EXPECT_DOUBLE_EQ(model.signal_dbm(10), first);
}

TEST(SineSignalModel, RejectsBackwardQueries) {
  SineSignalParams params;
  SineSignalModel model(params, Rng(5));
  (void)model.signal_dbm(10);
  EXPECT_THROW((void)model.signal_dbm(3), Error);
}

TEST(SineSignalModel, DeterministicForSameSeed) {
  SineSignalParams params;
  SineSignalModel a(params, Rng(77));
  SineSignalModel b(params, Rng(77));
  for (std::int64_t slot = 0; slot < 200; ++slot) {
    EXPECT_DOUBLE_EQ(a.signal_dbm(slot), b.signal_dbm(slot));
  }
}

TEST(SineSignalModel, RejectsInvalidParams) {
  SineSignalParams bad_range;
  bad_range.min_dbm = -50.0;
  bad_range.max_dbm = -110.0;
  EXPECT_THROW(SineSignalModel(bad_range, Rng(1)), Error);
  SineSignalParams bad_period;
  bad_period.period_slots = 0.0;
  EXPECT_THROW(SineSignalModel(bad_period, Rng(1)), Error);
}

TEST(TraceSignalModel, WrapsAround) {
  TraceSignalModel model({-60.0, -70.0, -80.0});
  EXPECT_DOUBLE_EQ(model.signal_dbm(0), -60.0);
  EXPECT_DOUBLE_EQ(model.signal_dbm(4), -70.0);
  EXPECT_DOUBLE_EQ(model.signal_dbm(3000), -60.0);
}

TEST(TraceSignalModel, RejectsEmptyTrace) {
  EXPECT_THROW(TraceSignalModel({}), Error);
}

TEST(GaussMarkovSignalModel, StaysInRangeAndIsCorrelated) {
  GaussMarkovSignalModel::Params params;
  params.rho = 0.98;
  GaussMarkovSignalModel model(params, Rng(21));
  double prev = model.signal_dbm(0);
  double total_step = 0.0;
  for (std::int64_t slot = 1; slot < 2000; ++slot) {
    const double cur = model.signal_dbm(slot);
    EXPECT_GE(cur, params.min_dbm);
    EXPECT_LE(cur, params.max_dbm);
    total_step += std::abs(cur - prev);
    prev = cur;
  }
  // High correlation keeps average steps well below the noise-free swing.
  EXPECT_LT(total_step / 2000.0, 3.0 * params.noise_stddev_db);
}

TEST(GaussMarkovSignalModel, RejectsInvalidRho) {
  GaussMarkovSignalModel::Params params;
  params.rho = 1.0;
  EXPECT_THROW(GaussMarkovSignalModel(params, Rng(1)), Error);
}

}  // namespace
}  // namespace jstream
