#include "radio/rrc.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace jstream {
namespace {

TEST(TailEnergy, PiecewiseValuesMatchEq4) {
  const RadioProfile p = paper_3g_profile();
  // Inside DCH window: Pd * t.
  EXPECT_NEAR(tail_energy_mj(p, 1.0), 732.83, 1e-9);
  EXPECT_NEAR(tail_energy_mj(p, 3.29), 732.83 * 3.29, 1e-9);
  // Inside FACH window: Pd*T1 + Pf*(t - T1).
  EXPECT_NEAR(tail_energy_mj(p, 5.0), 732.83 * 3.29 + 388.88 * (5.0 - 3.29), 1e-9);
  // Saturated: Pd*T1 + Pf*T2.
  EXPECT_NEAR(tail_energy_mj(p, 100.0), p.max_tail_energy_mj(), 1e-9);
}

TEST(TailEnergy, ContinuousAtBreakpoints) {
  const RadioProfile p = paper_3g_profile();
  const double eps = 1e-9;
  EXPECT_NEAR(tail_energy_mj(p, p.t1_s - eps), tail_energy_mj(p, p.t1_s + eps), 1e-4);
  const double t12 = p.t1_s + p.t2_s;
  EXPECT_NEAR(tail_energy_mj(p, t12 - eps), tail_energy_mj(p, t12 + eps), 1e-4);
}

TEST(TailEnergy, MonotoneNonDecreasing) {
  const RadioProfile p = paper_3g_profile();
  double prev = 0.0;
  for (double t = 0.0; t <= 12.0; t += 0.25) {
    const double e = tail_energy_mj(p, t);
    EXPECT_GE(e, prev);
    prev = e;
  }
}

TEST(TailEnergy, RejectsNegativeTime) {
  EXPECT_THROW((void)tail_energy_mj(paper_3g_profile(), -1.0), Error);
}

TEST(SlotTailEnergy, IsTheDifferenceOfCumulative) {
  const RadioProfile p = paper_3g_profile();
  for (double start : {0.0, 2.0, 3.29, 6.0, 10.0}) {
    EXPECT_NEAR(slot_tail_energy_mj(p, start, 1.0),
                tail_energy_mj(p, start + 1.0) - tail_energy_mj(p, start), 1e-9);
  }
}

TEST(RrcStateMachine, NoTailBeforeFirstTransmission) {
  RrcStateMachine rrc(paper_3g_profile());
  EXPECT_TRUE(rrc.never_transmitted());
  EXPECT_EQ(rrc.state(), RrcState::kIdle);
  for (int slot = 0; slot < 5; ++slot) {
    EXPECT_DOUBLE_EQ(rrc.advance_slot(0.0, 1.0), 0.0);
  }
}

TEST(RrcStateMachine, SlotExclusiveSemanticsEq5) {
  // Paper Eq. 5: a transmission slot carries no tail energy at all.
  RrcStateMachine rrc(paper_3g_profile());
  EXPECT_DOUBLE_EQ(rrc.advance_slot(0.2, 1.0), 0.0);
  EXPECT_EQ(rrc.state(), RrcState::kDch);
  EXPECT_DOUBLE_EQ(rrc.idle_time_s(), 0.0);
}

TEST(RrcStateMachine, IdleSlotsWalkDownTheTail) {
  const RadioProfile p = paper_3g_profile();
  RrcStateMachine rrc(p);
  (void)rrc.advance_slot(1.0, 1.0);
  double total = 0.0;
  for (int slot = 0; slot < 20; ++slot) {
    total += rrc.advance_slot(0.0, 1.0);
  }
  EXPECT_NEAR(total, p.max_tail_energy_mj(), 1e-9);
  EXPECT_EQ(rrc.state(), RrcState::kIdle);
}

TEST(RrcStateMachine, StateFollowsTimers) {
  const RadioProfile p = paper_3g_profile();
  RrcStateMachine rrc(p);
  (void)rrc.advance_slot(1.0, 1.0);
  EXPECT_EQ(rrc.state(), RrcState::kDch);
  (void)rrc.advance_slot(0.0, 1.0);
  (void)rrc.advance_slot(0.0, 1.0);
  (void)rrc.advance_slot(0.0, 1.0);
  (void)rrc.advance_slot(0.0, 1.0);  // idle = 4.0 > T1 = 3.29
  EXPECT_EQ(rrc.state(), RrcState::kFach);
  for (int i = 0; i < 4; ++i) (void)rrc.advance_slot(0.0, 1.0);  // idle = 8 > 7.31
  EXPECT_EQ(rrc.state(), RrcState::kIdle);
}

TEST(RrcStateMachine, TransmissionResetsTailClock) {
  RrcStateMachine rrc(paper_3g_profile());
  (void)rrc.advance_slot(1.0, 1.0);
  (void)rrc.advance_slot(0.0, 1.0);
  (void)rrc.advance_slot(0.0, 1.0);
  EXPECT_GT(rrc.idle_time_s(), 0.0);
  (void)rrc.advance_slot(0.5, 1.0);
  EXPECT_DOUBLE_EQ(rrc.idle_time_s(), 0.0);
}

TEST(RrcStateMachine, ContinuousTailChargesInSlotResidue) {
  RadioProfile p = paper_3g_profile();
  p.continuous_tail = true;
  RrcStateMachine rrc(p);
  // 0.25 s active transfer -> 0.75 s of fresh DCH tail inside the slot.
  EXPECT_NEAR(rrc.advance_slot(0.25, 1.0), 732.83 * 0.75, 1e-9);
  EXPECT_NEAR(rrc.idle_time_s(), 0.75, 1e-12);
  // The next idle slot continues the same tail from 0.75 s.
  EXPECT_NEAR(rrc.advance_slot(0.0, 1.0), slot_tail_energy_mj(p, 0.75, 1.0), 1e-9);
}

TEST(RrcStateMachine, LteTwoStateSkipsFach) {
  RrcStateMachine rrc(lte_profile());
  (void)rrc.advance_slot(1.0, 1.0);
  EXPECT_EQ(rrc.state(), RrcState::kDch);
  for (int i = 0; i < 12; ++i) (void)rrc.advance_slot(0.0, 1.0);  // past 11.5 s
  EXPECT_EQ(rrc.state(), RrcState::kIdle);
}

TEST(RrcStateMachine, LteTailIsConnectedPowerTimesTimer) {
  const RadioProfile p = lte_profile();
  RrcStateMachine rrc(p);
  (void)rrc.advance_slot(1.0, 1.0);
  double total = 0.0;
  for (int i = 0; i < 20; ++i) total += rrc.advance_slot(0.0, 1.0);
  EXPECT_NEAR(total, p.p_dch_mw * p.t1_s, 1e-9);
}

TEST(RrcStateMachine, RejectsInvalidSlotInputs) {
  RrcStateMachine rrc(paper_3g_profile());
  EXPECT_THROW((void)rrc.advance_slot(0.0, 0.0), Error);
  EXPECT_THROW((void)rrc.advance_slot(-0.1, 1.0), Error);
}

}  // namespace
}  // namespace jstream
