#include "abr/abr_simulator.hpp"

#include <gtest/gtest.h>

#include "baselines/factory.hpp"
#include "common/error.hpp"

namespace jstream {
namespace {

AbrScenarioConfig small_abr(std::uint64_t seed = 9) {
  AbrScenarioConfig config;
  config.base = paper_scenario(5, seed);
  config.base.max_slots = 3000;
  config.duration_min_s = 40.0;
  config.duration_max_s = 80.0;
  return config;
}

TEST(AbrSimulator, CompletesEverySession) {
  const AbrRunMetrics metrics = simulate_abr(small_abr(), make_scheduler("default"));
  EXPECT_DOUBLE_EQ(metrics.completion_rate(), 1.0);
  EXPECT_GT(metrics.total_energy_mj(), 0.0);
  EXPECT_LT(metrics.slots_run, 3000);
  for (const auto& user : metrics.per_user) {
    EXPECT_GE(user.qoe.mean_quality_kbps(user.duration_s), 300.0 - 1e-6);
    EXPECT_LE(user.qoe.mean_quality_kbps(user.duration_s), 600.0 + 1e-6);
  }
}

TEST(AbrSimulator, DeterministicPerSeed) {
  const AbrRunMetrics a = simulate_abr(small_abr(5), make_scheduler("default"));
  const AbrRunMetrics b = simulate_abr(small_abr(5), make_scheduler("default"));
  EXPECT_DOUBLE_EQ(a.total_energy_mj(), b.total_energy_mj());
  EXPECT_DOUBLE_EQ(a.mean_qoe_score(), b.mean_qoe_score());
}

TEST(AbrSimulator, BufferBasedBeatsLowestFixedOnQuality) {
  AbrScenarioConfig adaptive = small_abr();
  adaptive.selector = "buffer-based";
  AbrScenarioConfig floor_quality = small_abr();
  floor_quality.selector = "fixed";
  const AbrRunMetrics a = simulate_abr(adaptive, make_scheduler("default"));
  const AbrRunMetrics b = simulate_abr(floor_quality, make_scheduler("default"));
  // With ample capacity the adaptive client climbs the ladder.
  EXPECT_GT(a.mean_quality_kbps(), b.mean_quality_kbps());
  EXPECT_NEAR(b.mean_quality_kbps(), 300.0, 1e-6);
}

TEST(AbrSimulator, RateBasedStaysWithinEstimatedThroughput) {
  AbrScenarioConfig config = small_abr();
  config.selector = "rate-based";
  const AbrRunMetrics metrics = simulate_abr(config, make_scheduler("default"));
  EXPECT_DOUBLE_EQ(metrics.completion_rate(), 1.0);
}

TEST(AbrSimulator, WorksWithEveryFactoryScheduler) {
  for (const std::string& name : scheduler_names()) {
    const AbrRunMetrics metrics = simulate_abr(small_abr(3), make_scheduler(name));
    EXPECT_DOUBLE_EQ(metrics.completion_rate(), 1.0) << name;
  }
}

TEST(AbrSimulator, ContentionPushesQualityDown) {
  AbrScenarioConfig roomy = small_abr(21);
  AbrScenarioConfig squeezed = small_abr(21);
  squeezed.base.capacity_kbps = 1600.0;  // 5 users x ~320 KB/s
  const AbrRunMetrics a = simulate_abr(roomy, make_scheduler("default"));
  const AbrRunMetrics b = simulate_abr(squeezed, make_scheduler("default"));
  EXPECT_LT(b.mean_quality_kbps(), a.mean_quality_kbps());
}

TEST(AbrSimulator, RejectsBadConfiguration) {
  AbrScenarioConfig config = small_abr();
  config.duration_min_s = 0.0;
  EXPECT_THROW((void)simulate_abr(config, make_scheduler("default")), Error);
  config = small_abr();
  config.segment_s = 0.0;
  EXPECT_THROW((void)simulate_abr(config, make_scheduler("default")), Error);
  config = small_abr();
  EXPECT_THROW((void)simulate_abr(config, nullptr), Error);
  config = small_abr();
  config.ladder_kbps = {600.0, 300.0};
  EXPECT_THROW((void)simulate_abr(config, make_scheduler("default")), Error);
}

}  // namespace
}  // namespace jstream
