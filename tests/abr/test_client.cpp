#include "abr/client.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace jstream {
namespace {

std::unique_ptr<AbrClient> make_client(double duration_s = 20.0,
                                       double segment_s = 4.0,
                                       const std::string& selector = "fixed") {
  return std::make_unique<AbrClient>(duration_s, segment_s,
                                     QualityLadder({300.0, 450.0, 600.0}),
                                     make_quality_selector(selector), 1.0);
}

TEST(AbrClient, SegmentAccountingAtFixedQuality) {
  auto client = make_client();
  // Fixed selector -> level 0 (300 KB/s); one segment = 4 s * 300 = 1200 KB.
  client->begin_slot();
  EXPECT_DOUBLE_EQ(client->current_rate_kbps(), 300.0);
  EXPECT_DOUBLE_EQ(client->segment_remaining_kb(), 1200.0);
  EXPECT_DOUBLE_EQ(client->estimated_remaining_kb(), 20.0 * 300.0);
  // Half a segment downloaded: nothing playable yet.
  EXPECT_DOUBLE_EQ(client->on_downloaded(600.0, 300.0), 600.0);
  client->end_slot();
  client->begin_slot();
  EXPECT_DOUBLE_EQ(client->buffer().occupancy_s(), 0.0);
  // Completing the segment makes 4 s playable (next slot).
  EXPECT_DOUBLE_EQ(client->on_downloaded(600.0, 300.0), 600.0);
  client->end_slot();
  client->begin_slot();
  EXPECT_DOUBLE_EQ(client->buffer().occupancy_s(), 4.0);
  client->end_slot();
}

TEST(AbrClient, FullDownloadYieldsFullPlayback) {
  auto client = make_client(10.0, 4.0);  // segments 4+4+2 s at 300 KB/s
  client->begin_slot();
  const double total_kb = 10.0 * 300.0;
  EXPECT_DOUBLE_EQ(client->on_downloaded(total_kb, 300.0), total_kb);
  EXPECT_TRUE(client->download_finished());
  EXPECT_DOUBLE_EQ(client->estimated_remaining_kb(), 0.0);
  client->end_slot();
  for (int slot = 0; slot < 12 && !client->playback_finished(); ++slot) {
    client->begin_slot();
    client->end_slot();
  }
  EXPECT_TRUE(client->playback_finished());
}

TEST(AbrClient, ExcessDeliveryIsReturnedUnconsumed) {
  auto client = make_client(4.0, 4.0);  // single 1200 KB segment
  client->begin_slot();
  EXPECT_DOUBLE_EQ(client->on_downloaded(2000.0, 300.0), 1200.0);
  client->end_slot();
}

TEST(AbrClient, BufferBasedUpgradesAndCountsSwitches) {
  auto client = make_client(60.0, 4.0, "buffer-based");
  // Empty buffer -> lowest level first.
  client->begin_slot();
  EXPECT_DOUBLE_EQ(client->on_downloaded(1200.0, 300.0), 1200.0);  // seg 0 done
  client->end_slot();
  // Pump the buffer far above the cushion, then finish another segment: the
  // next selection should be a higher level, counting a switch.
  for (int k = 0; k < 12; ++k) {
    client->begin_slot();
    (void)client->on_downloaded(client->segment_remaining_kb(), 3000.0);
    client->end_slot();
  }
  EXPECT_GT(client->current_level(), 0u);
  EXPECT_GT(client->qoe().switches, 0);
}

TEST(AbrClient, QoeScorePenalizesRebuffering) {
  AbrQoe smooth;
  smooth.quality_seconds_kbps = 600.0 * 100.0;
  AbrQoe stally = smooth;
  stally.rebuffer_s = 10.0;
  EXPECT_GT(smooth.score(100.0), stally.score(100.0));
  AbrQoe switchy = smooth;
  switchy.switches = 20;
  EXPECT_GT(smooth.score(100.0), switchy.score(100.0));
}

TEST(AbrClient, RecordsRebufferWhileStarved) {
  auto client = make_client();
  client->begin_slot();
  client->record_rebuffer();  // cold start, empty buffer
  client->end_slot();
  EXPECT_DOUBLE_EQ(client->qoe().rebuffer_s, 1.0);
}

TEST(AbrClient, RejectsInvalidConstruction) {
  EXPECT_THROW(AbrClient(0.0, 4.0, QualityLadder({300.0}),
                         make_quality_selector("fixed"), 1.0),
               Error);
  EXPECT_THROW(AbrClient(10.0, 0.0, QualityLadder({300.0}),
                         make_quality_selector("fixed"), 1.0),
               Error);
  EXPECT_THROW(AbrClient(10.0, 4.0, QualityLadder({300.0}), nullptr, 1.0), Error);
}

}  // namespace
}  // namespace jstream
