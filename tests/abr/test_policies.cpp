#include "abr/policies.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace jstream {
namespace {

const QualityLadder kLadder({300.0, 375.0, 450.0, 525.0, 600.0});

AbrDecisionInput input(double buffer_s, double throughput = 0.0,
                       std::size_t last = 0) {
  AbrDecisionInput in;
  in.buffer_s = buffer_s;
  in.throughput_kbps = throughput;
  in.last_level = last;
  return in;
}

TEST(FixedQualitySelector, AlwaysSameLevelAndClamped) {
  FixedQualitySelector low(0);
  FixedQualitySelector over(99);
  EXPECT_EQ(low.select(input(0.0), kLadder), 0u);
  EXPECT_EQ(low.select(input(100.0), kLadder), 0u);
  EXPECT_EQ(over.select(input(0.0), kLadder), 4u);
}

TEST(BufferBasedSelector, MapsBufferToLevels) {
  BufferBasedSelector bba(8.0, 40.0);
  EXPECT_EQ(bba.select(input(0.0), kLadder), 0u);
  EXPECT_EQ(bba.select(input(8.0), kLadder), 0u);
  EXPECT_EQ(bba.select(input(40.0), kLadder), 4u);
  EXPECT_EQ(bba.select(input(100.0), kLadder), 4u);
  // Midpoint of the cushion maps to the middle of the ladder.
  EXPECT_EQ(bba.select(input(24.0), kLadder), 2u);
}

TEST(BufferBasedSelector, MonotoneInBuffer) {
  BufferBasedSelector bba;
  std::size_t prev = 0;
  for (double buffer = 0.0; buffer <= 60.0; buffer += 2.0) {
    const std::size_t level = bba.select(input(buffer), kLadder);
    EXPECT_GE(level, prev);
    prev = level;
  }
}

TEST(RateBasedSelector, PicksSustainableLevel) {
  RateBasedSelector rate(0.8);
  // 0.8 * 700 = 560 -> highest level at or below 560 is 525 (index 3).
  EXPECT_EQ(rate.select(input(0.0, 700.0), kLadder), 3u);
  EXPECT_EQ(rate.select(input(0.0, 10000.0), kLadder), 4u);
  EXPECT_EQ(rate.select(input(0.0, 100.0), kLadder), 0u);
}

TEST(Selectors, FactoryAndValidation) {
  EXPECT_EQ(make_quality_selector("fixed")->name(), "fixed");
  EXPECT_EQ(make_quality_selector("buffer-based")->name(), "buffer-based");
  EXPECT_EQ(make_quality_selector("rate-based")->name(), "rate-based");
  EXPECT_THROW((void)make_quality_selector("bogus"), Error);
  EXPECT_THROW(BufferBasedSelector(10.0, 5.0), Error);
  EXPECT_THROW(RateBasedSelector(0.0), Error);
}

}  // namespace
}  // namespace jstream
