#include "abr/ladder.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace jstream {
namespace {

TEST(QualityLadder, BasicAccess) {
  const QualityLadder ladder({300.0, 450.0, 600.0});
  EXPECT_EQ(ladder.levels(), 3u);
  EXPECT_DOUBLE_EQ(ladder.rate_kbps(0), 300.0);
  EXPECT_DOUBLE_EQ(ladder.rate_kbps(2), 600.0);
  EXPECT_DOUBLE_EQ(ladder.min_rate_kbps(), 300.0);
  EXPECT_DOUBLE_EQ(ladder.max_rate_kbps(), 600.0);
}

TEST(QualityLadder, LevelForRate) {
  const QualityLadder ladder({300.0, 450.0, 600.0});
  EXPECT_EQ(ladder.level_for_rate(100.0), 0u);   // below everything -> lowest
  EXPECT_EQ(ladder.level_for_rate(300.0), 0u);
  EXPECT_EQ(ladder.level_for_rate(449.0), 0u);
  EXPECT_EQ(ladder.level_for_rate(450.0), 1u);
  EXPECT_EQ(ladder.level_for_rate(10000.0), 2u);
}

TEST(QualityLadder, RejectsMalformedLadders) {
  EXPECT_THROW(QualityLadder({}), Error);
  EXPECT_THROW(QualityLadder({-1.0, 300.0}), Error);
  EXPECT_THROW(QualityLadder({300.0, 300.0}), Error);
  EXPECT_THROW(QualityLadder({600.0, 300.0}), Error);
  const QualityLadder ladder({300.0});
  EXPECT_THROW((void)ladder.rate_kbps(1), Error);
}

TEST(QualityLadder, PaperRangePreset) {
  const QualityLadder ladder = paper_range_ladder();
  EXPECT_EQ(ladder.levels(), 5u);
  EXPECT_DOUBLE_EQ(ladder.min_rate_kbps(), 300.0);
  EXPECT_DOUBLE_EQ(ladder.max_rate_kbps(), 600.0);
}

}  // namespace
}  // namespace jstream
