#include "baselines/throttling.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "test_helpers.hpp"

namespace jstream {
namespace {

using testing::TestUser;
using testing::make_context;

TEST(Throttling, PacesAtFactorTimesEncodingRate) {
  ThrottlingScheduler scheduler(1.25);
  scheduler.reset(2);
  const SlotContext ctx =
      make_context({TestUser{-60.0, 400.0}, TestUser{-60.0, 300.0}});
  const Allocation alloc = scheduler.allocate(ctx);
  EXPECT_EQ(alloc.units[0], 5);  // ceil(1.25 * 400 / 100)
  EXPECT_EQ(alloc.units[1], 4);  // ceil(1.25 * 300 / 100)
}

TEST(Throttling, LinkCapBindsAtWeakSignal) {
  ThrottlingScheduler scheduler(1.25);
  scheduler.reset(1);
  // v(-110) = 329 KB/s -> 3 units < paced 8 units for a 600 KB/s video.
  const SlotContext ctx = make_context({TestUser{-110.0, 600.0}});
  const Allocation alloc = scheduler.allocate(ctx);
  EXPECT_EQ(alloc.units[0], 3);
}

TEST(Throttling, TransmitsEverySlotRegardlessOfBuffer) {
  ThrottlingScheduler scheduler;
  scheduler.reset(1);
  std::vector<TestUser> users{TestUser{-70.0, 400.0}};
  users[0].buffer_s = 500.0;  // huge buffer; throttling does not care
  const SlotContext ctx = make_context(users);
  EXPECT_GT(scheduler.allocate(ctx).units[0], 0);
}

TEST(Throttling, FixedOrderStarvesTailUnderPressure) {
  ThrottlingScheduler scheduler(1.25);
  scheduler.reset(3);
  // Capacity of 5 units covers only the first user's pace.
  std::vector<TestUser> users(3, TestUser{-60.0, 400.0});
  bool user2_ever_served = false;
  for (std::int64_t slot = 0; slot < 32; ++slot) {
    const SlotContext ctx = make_context(users, 500.0, SlotParams{}, slot);
    const Allocation alloc = scheduler.allocate(ctx);
    EXPECT_EQ(alloc.units[0], 5);  // head of the fixed order always wins
    if (alloc.units[2] > 0) user2_ever_served = true;
  }
  EXPECT_FALSE(user2_ever_served);  // persistent per-flow dominance
}

TEST(Throttling, RespectsCapacity) {
  ThrottlingScheduler scheduler;
  scheduler.reset(8);
  const std::vector<TestUser> users(8, TestUser{-60.0, 600.0});
  const SlotContext ctx = make_context(users, /*capacity_kbps=*/2000.0);
  EXPECT_LE(scheduler.allocate(ctx).total_units(), ctx.capacity_units);
}

TEST(Throttling, RejectsFactorBelowOne) {
  EXPECT_THROW(ThrottlingScheduler(0.9), Error);
  EXPECT_NO_THROW(ThrottlingScheduler(1.0));
}

}  // namespace
}  // namespace jstream
