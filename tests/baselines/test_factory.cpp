#include "baselines/factory.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "core/ema_fast.hpp"

namespace jstream {
namespace {

TEST(Factory, CreatesEveryRegisteredScheduler) {
  for (const std::string& name : scheduler_names()) {
    const auto scheduler = make_scheduler(name);
    ASSERT_NE(scheduler, nullptr) << name;
    EXPECT_EQ(scheduler->name(), name);
  }
}

TEST(Factory, RejectsUnknownName) {
  EXPECT_THROW((void)make_scheduler("bogus"), Error);
  EXPECT_THROW((void)make_scheduler(""), Error);
}

TEST(Factory, ForwardsRtmaOptions) {
  SchedulerOptions options;
  options.rtma.energy_budget_mj = 900.0;
  const auto scheduler = make_scheduler("rtma", options);
  const auto* rtma = dynamic_cast<const RtmaScheduler*>(scheduler.get());
  ASSERT_NE(rtma, nullptr);
  EXPECT_DOUBLE_EQ(rtma->config().energy_budget_mj, 900.0);
}

TEST(Factory, ForwardsEmaOptions) {
  SchedulerOptions options;
  options.ema.v_weight = 0.42;
  const auto scheduler = make_scheduler("ema-fast", options);
  const auto* ema = dynamic_cast<const EmaFastScheduler*>(scheduler.get());
  ASSERT_NE(ema, nullptr);
  EXPECT_DOUBLE_EQ(ema->config().v_weight, 0.42);
}

TEST(Factory, SchedulerNamesAreUniqueAndComplete) {
  const auto names = scheduler_names();
  EXPECT_EQ(names.size(), 9u);
  for (std::size_t i = 0; i < names.size(); ++i) {
    for (std::size_t j = i + 1; j < names.size(); ++j) {
      EXPECT_NE(names[i], names[j]);
    }
  }
}

}  // namespace
}  // namespace jstream
