#include "baselines/onoff.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "test_helpers.hpp"

namespace jstream {
namespace {

using testing::TestUser;
using testing::make_context;

TEST(OnOff, StartsOnAndGrabsFullRate) {
  OnOffScheduler scheduler(10.0, 40.0);
  scheduler.reset(1);
  const SlotContext ctx = make_context({TestUser{-80.0, 400.0}});
  const Allocation alloc = scheduler.allocate(ctx);
  EXPECT_EQ(alloc.units[0], ctx.users[0].alloc_cap_units);
}

TEST(OnOff, TurnsOffAboveHighWatermark) {
  OnOffScheduler scheduler(10.0, 40.0);
  scheduler.reset(1);
  std::vector<TestUser> users{TestUser{-80.0, 400.0}};
  users[0].buffer_s = 45.0;
  const SlotContext ctx = make_context(users);
  EXPECT_EQ(scheduler.allocate(ctx).units[0], 0);
}

TEST(OnOff, StaysOffUntilLowWatermark) {
  OnOffScheduler scheduler(10.0, 40.0);
  scheduler.reset(1);
  std::vector<TestUser> users{TestUser{-80.0, 400.0}};
  users[0].buffer_s = 45.0;
  (void)scheduler.allocate(make_context(users));  // flips to OFF
  users[0].buffer_s = 25.0;                        // between watermarks
  EXPECT_EQ(scheduler.allocate(make_context(users)).units[0], 0);
  users[0].buffer_s = 9.0;                         // below low watermark
  EXPECT_GT(scheduler.allocate(make_context(users)).units[0], 0);
}

TEST(OnOff, HysteresisKeepsOnBetweenWatermarks) {
  OnOffScheduler scheduler(10.0, 40.0);
  scheduler.reset(1);
  std::vector<TestUser> users{TestUser{-80.0, 400.0}};
  users[0].buffer_s = 25.0;  // between watermarks, initial phase is ON
  EXPECT_GT(scheduler.allocate(make_context(users)).units[0], 0);
}

TEST(OnOff, RespectsCapacityAcrossUsers) {
  OnOffScheduler scheduler(10.0, 40.0);
  scheduler.reset(6);
  const std::vector<TestUser> users(6, TestUser{-70.0, 400.0});
  const SlotContext ctx = make_context(users, /*capacity_kbps=*/3000.0);
  const Allocation alloc = scheduler.allocate(ctx);
  EXPECT_LE(alloc.total_units(), ctx.capacity_units);
}

TEST(OnOff, RejectsBadWatermarksAndMissingReset) {
  EXPECT_THROW(OnOffScheduler(-1.0, 40.0), Error);
  EXPECT_THROW(OnOffScheduler(40.0, 10.0), Error);
  OnOffScheduler scheduler;
  const SlotContext ctx = make_context({TestUser{}});
  EXPECT_THROW((void)scheduler.allocate(ctx), Error);
}

}  // namespace
}  // namespace jstream
