#include "baselines/estreamer.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "test_helpers.hpp"

namespace jstream {
namespace {

using testing::TestUser;
using testing::make_context;

TEST(EStreamer, BurstsTowardBufferCapacity) {
  EStreamerScheduler scheduler;  // capacity 30 s, resume 6 s
  scheduler.reset(1);
  std::vector<TestUser> users{TestUser{-60.0, 400.0}};
  users[0].buffer_s = 10.0;
  const Allocation alloc = scheduler.allocate(make_context(users));
  // Wants (30 - 10) s * 400 KB/s = 80 units but the link caps at 36.
  EXPECT_EQ(alloc.units[0], 36);
}

TEST(EStreamer, IdlesAtFullBufferUntilResumeThreshold) {
  EStreamerScheduler scheduler;
  scheduler.reset(1);
  std::vector<TestUser> users{TestUser{-60.0, 400.0}};
  users[0].buffer_s = 31.0;
  EXPECT_EQ(scheduler.allocate(make_context(users)).units[0], 0);
  users[0].buffer_s = 15.0;  // still above resume threshold
  EXPECT_EQ(scheduler.allocate(make_context(users)).units[0], 0);
  users[0].buffer_s = 5.0;  // below resume threshold: burst again
  EXPECT_GT(scheduler.allocate(make_context(users)).units[0], 0);
}

TEST(EStreamer, SignalBlindByDesign) {
  // Identical buffers, wildly different channels: EStreamer bursts on both
  // (only the link cap differs).
  EStreamerScheduler scheduler;
  scheduler.reset(2);
  std::vector<TestUser> users{TestUser{-50.0, 400.0}, TestUser{-110.0, 400.0}};
  const SlotContext ctx = make_context(users);
  const Allocation alloc = scheduler.allocate(ctx);
  EXPECT_GT(alloc.units[0], 0);
  EXPECT_GT(alloc.units[1], 0);
  EXPECT_EQ(alloc.units[1], ctx.users[1].alloc_cap_units);
}

TEST(EStreamer, RespectsCapacity) {
  EStreamerScheduler scheduler;
  scheduler.reset(10);
  const std::vector<TestUser> users(10, TestUser{-60.0, 500.0});
  const SlotContext ctx = make_context(users, /*capacity_kbps=*/2500.0);
  EXPECT_LE(scheduler.allocate(ctx).total_units(), ctx.capacity_units);
}

TEST(EStreamer, RejectsBadParamsAndMissingReset) {
  EStreamerScheduler::Params bad;
  bad.resume_threshold_s = 40.0;  // above capacity
  EXPECT_THROW(EStreamerScheduler{bad}, Error);
  EStreamerScheduler scheduler;
  const SlotContext ctx = make_context({TestUser{}});
  EXPECT_THROW((void)scheduler.allocate(ctx), Error);
}

}  // namespace
}  // namespace jstream
