#include "baselines/default_scheduler.hpp"

#include <gtest/gtest.h>

#include <set>

#include "baselines/rotation.hpp"
#include "test_helpers.hpp"

namespace jstream {
namespace {

using testing::TestUser;
using testing::make_context;

TEST(DefaultScheduler, GrabsFullLinkRateUpToCapacity) {
  DefaultScheduler scheduler;
  scheduler.reset(2);
  // Plenty of capacity: everyone gets the full link cap.
  const SlotContext ctx =
      make_context({TestUser{-80.0, 400.0}, TestUser{-110.0, 400.0}});
  const Allocation alloc = scheduler.allocate(ctx);
  EXPECT_EQ(alloc.units[0], ctx.users[0].alloc_cap_units);
  EXPECT_EQ(alloc.units[1], ctx.users[1].alloc_cap_units);
}

TEST(DefaultScheduler, CapacityBindsAndStarvesTheTail) {
  DefaultScheduler scheduler;
  scheduler.reset(4);
  // Capacity of 23 units = exactly one strong user's link cap.
  std::vector<TestUser> users(4, TestUser{-80.0, 400.0});
  const SlotContext ctx = make_context(users, /*capacity_kbps=*/2300.0);
  const Allocation alloc = scheduler.allocate(ctx);
  EXPECT_EQ(alloc.total_units(), ctx.capacity_units);
  // Exactly one user (whoever heads this slot's rotation) gets everything.
  int winners = 0;
  for (std::int64_t units : alloc.units) {
    if (units == 23) ++winners;
  }
  EXPECT_EQ(winners, 1);
}

TEST(DefaultScheduler, ServingOrderRotatesAcrossSlots) {
  DefaultScheduler scheduler;
  scheduler.reset(4);
  std::vector<TestUser> users(4, TestUser{-80.0, 400.0});
  std::set<std::size_t> winners;
  for (std::int64_t slot = 0; slot < 64; ++slot) {
    const SlotContext ctx = make_context(users, 2300.0, SlotParams{}, slot);
    const Allocation alloc = scheduler.allocate(ctx);
    for (std::size_t i = 0; i < 4; ++i) {
      if (alloc.units[i] > 0) winners.insert(i);
    }
  }
  // Over many slots every user gets a turn (no permanent starvation).
  EXPECT_EQ(winners.size(), 4u);
}

TEST(DefaultScheduler, RotationIsDeterministic) {
  EXPECT_EQ(rotation_start(17, 40), rotation_start(17, 40));
  // Different slots generally rotate to different heads.
  std::set<std::size_t> starts;
  for (std::int64_t slot = 0; slot < 40; ++slot) starts.insert(rotation_start(slot, 40));
  EXPECT_GT(starts.size(), 10u);
}

TEST(DefaultScheduler, SkipsFinishedUsers) {
  DefaultScheduler scheduler;
  scheduler.reset(2);
  std::vector<TestUser> users{TestUser{-80.0, 400.0}, TestUser{-80.0, 400.0}};
  users[0].remaining_kb = 0.0;
  const SlotContext ctx = make_context(users);
  const Allocation alloc = scheduler.allocate(ctx);
  EXPECT_EQ(alloc.units[0], 0);
  EXPECT_GT(alloc.units[1], 0);
}

}  // namespace
}  // namespace jstream
