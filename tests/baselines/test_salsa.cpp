#include "baselines/salsa.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "test_helpers.hpp"

namespace jstream {
namespace {

using testing::TestUser;
using testing::make_context;

TEST(Salsa, TransmitsOnFirstSlot) {
  // The EWMA seeds from the first observation, so the channel looks average
  // and the empty buffer forces a panic transmission.
  SalsaScheduler scheduler;
  scheduler.reset(1);
  const SlotContext ctx = make_context({TestUser{-80.0, 400.0}});
  EXPECT_GT(scheduler.allocate(ctx).units[0], 0);
}

TEST(Salsa, DefersOnExpensiveChannelWithHealthyBuffer) {
  SalsaScheduler scheduler;
  scheduler.reset(1);
  // Train the EWMA on a good channel first.
  std::vector<TestUser> users{TestUser{-60.0, 400.0}};
  users[0].buffer_s = 10.0;
  for (std::int64_t slot = 0; slot < 50; ++slot) {
    (void)scheduler.allocate(make_context(users, 20000.0, SlotParams{}, slot));
    users[0].buffer_s = 10.0;
  }
  // Now the channel collapses but the buffer is healthy: defer.
  users[0].signal_dbm = -110.0;
  EXPECT_EQ(scheduler.allocate(make_context(users)).units[0], 0);
}

TEST(Salsa, PanicsWhenBufferNearlyEmpty) {
  SalsaScheduler scheduler;
  scheduler.reset(1);
  std::vector<TestUser> users{TestUser{-60.0, 400.0}};
  users[0].buffer_s = 10.0;
  for (std::int64_t slot = 0; slot < 50; ++slot) {
    (void)scheduler.allocate(make_context(users, 20000.0, SlotParams{}, slot));
    users[0].buffer_s = 10.0;
  }
  users[0].signal_dbm = -110.0;
  users[0].buffer_s = 1.0;  // below the panic threshold
  EXPECT_GT(scheduler.allocate(make_context(users)).units[0], 0);
}

TEST(Salsa, FillsTowardTargetBuffer) {
  SalsaScheduler::Params params;
  params.target_buffer_s = 15.0;
  SalsaScheduler scheduler(params);
  scheduler.reset(1);
  std::vector<TestUser> users{TestUser{-60.0, 400.0}};
  users[0].buffer_s = 13.0;
  const Allocation alloc = scheduler.allocate(make_context(users));
  // Deficit of 2 s at 400 KB/s = 800 KB = 8 units.
  EXPECT_EQ(alloc.units[0], 8);
}

TEST(Salsa, RespectsCapacity) {
  SalsaScheduler scheduler;
  scheduler.reset(10);
  const std::vector<TestUser> users(10, TestUser{-70.0, 500.0});
  const SlotContext ctx = make_context(users, /*capacity_kbps=*/2000.0);
  EXPECT_LE(scheduler.allocate(ctx).total_units(), ctx.capacity_units);
}

TEST(Salsa, RejectsBadParamsAndMissingReset) {
  SalsaScheduler::Params bad;
  bad.cost_ratio = 0.0;
  EXPECT_THROW(SalsaScheduler{bad}, Error);
  bad = SalsaScheduler::Params{};
  bad.target_buffer_s = 1.0;  // below panic threshold
  EXPECT_THROW(SalsaScheduler{bad}, Error);
  SalsaScheduler scheduler;
  const SlotContext ctx = make_context({TestUser{}});
  EXPECT_THROW((void)scheduler.allocate(ctx), Error);
}

}  // namespace
}  // namespace jstream
