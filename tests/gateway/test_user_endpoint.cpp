#include "gateway/user_endpoint.hpp"

#include <gtest/gtest.h>

#include "test_helpers.hpp"

namespace jstream {
namespace {

using testing::make_endpoint;

TEST(UserEndpoint, FreshEndpointState) {
  const UserEndpoint endpoint = make_endpoint(-70.0, 400.0, 2000.0);
  EXPECT_DOUBLE_EQ(endpoint.delivered_kb, 0.0);
  EXPECT_DOUBLE_EQ(endpoint.content_time_s, 0.0);
  EXPECT_DOUBLE_EQ(endpoint.remaining_kb(), 2000.0);
  EXPECT_TRUE(endpoint.active());
  EXPECT_EQ(endpoint.start_slot, 0);
  EXPECT_TRUE(endpoint.arrived(0));
}

TEST(UserEndpoint, RemainingTracksDelivery) {
  UserEndpoint endpoint = make_endpoint(-70.0, 400.0, 2000.0);
  endpoint.delivered_kb = 1500.0;
  EXPECT_DOUBLE_EQ(endpoint.remaining_kb(), 500.0);
  EXPECT_TRUE(endpoint.active());
}

TEST(UserEndpoint, InactiveOnlyAfterDeliveryAndPlayback) {
  UserEndpoint endpoint = make_endpoint(-70.0, 400.0, 800.0);  // 2 s of content
  endpoint.delivered_kb = 800.0;
  EXPECT_TRUE(endpoint.active());  // playback has not happened yet
  endpoint.buffer.begin_slot();
  endpoint.buffer.deliver(2.0);
  endpoint.buffer.end_slot();
  for (int slot = 0; slot < 3; ++slot) {
    endpoint.buffer.begin_slot();
    endpoint.buffer.end_slot();
  }
  EXPECT_TRUE(endpoint.buffer.playback_finished());
  EXPECT_FALSE(endpoint.active());
}

TEST(UserEndpoint, SessionTotalsConsistent) {
  const UserEndpoint endpoint = make_endpoint(-70.0, 500.0, 5000.0);
  EXPECT_DOUBLE_EQ(endpoint.session.total_playback_s(), 10.0);
  EXPECT_DOUBLE_EQ(endpoint.buffer.total_s(), 10.0);
}

TEST(UserEndpoint, ArrivalPredicateRespectsStartSlot) {
  UserEndpoint endpoint = make_endpoint(-70.0, 400.0, 1000.0);
  endpoint.start_slot = 10;
  EXPECT_FALSE(endpoint.arrived(9));
  EXPECT_TRUE(endpoint.arrived(10));
}

}  // namespace
}  // namespace jstream
