#include "gateway/info_collector.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "test_helpers.hpp"

namespace jstream {
namespace {

using testing::make_collector;
using testing::make_endpoint;
using testing::make_endpoints;

TEST(InfoCollector, SnapshotsCrossLayerState) {
  auto endpoints = make_endpoints({-80.0, -110.0}, 400.0, 50000.0);
  const InfoCollector collector = make_collector();
  const BaseStation bs(20000.0);

  for (auto& endpoint : endpoints) endpoint.buffer.begin_slot();
  const SlotContext ctx = collector.collect(0, endpoints, bs);
  for (auto& endpoint : endpoints) endpoint.buffer.end_slot();

  ASSERT_EQ(ctx.user_count(), 2u);
  EXPECT_EQ(ctx.capacity_units, 200);
  EXPECT_DOUBLE_EQ(ctx.users[0].signal_dbm, -80.0);
  EXPECT_DOUBLE_EQ(ctx.users[0].bitrate_kbps, 400.0);
  // v(-80) = 2303 KB/s -> 23 units; v(-110) = 329 -> 3 units.
  EXPECT_EQ(ctx.users[0].link_units, 23);
  EXPECT_EQ(ctx.users[1].link_units, 3);
  EXPECT_TRUE(ctx.users[0].needs_data);
  EXPECT_DOUBLE_EQ(ctx.users[0].remaining_kb, 50000.0);
  EXPECT_FALSE(ctx.users[0].rrc_promoted);
  EXPECT_FALSE(ctx.users[0].playback_done);
  ASSERT_NE(ctx.throughput, nullptr);
  ASSERT_NE(ctx.power, nullptr);
  ASSERT_NE(ctx.radio, nullptr);
}

TEST(InfoCollector, AllocCapBoundedByRemainingContent) {
  // 250 KB left -> ceil(250/100) = 3 units even though the link supports 23.
  auto endpoints = make_endpoints({-80.0}, 400.0, 250.0);
  const InfoCollector collector = make_collector();
  const BaseStation bs(20000.0);
  for (auto& endpoint : endpoints) endpoint.buffer.begin_slot();
  const SlotContext ctx = collector.collect(0, endpoints, bs);
  EXPECT_EQ(ctx.users[0].alloc_cap_units, 3);
}

TEST(InfoCollector, FinishedUserHasZeroCap) {
  auto endpoints = make_endpoints({-80.0}, 400.0, 300.0);
  endpoints[0].delivered_kb = 300.0;  // everything delivered
  const InfoCollector collector = make_collector();
  const BaseStation bs(20000.0);
  for (auto& endpoint : endpoints) endpoint.buffer.begin_slot();
  const SlotContext ctx = collector.collect(0, endpoints, bs);
  EXPECT_FALSE(ctx.users[0].needs_data);
  EXPECT_EQ(ctx.users[0].alloc_cap_units, 0);
}

TEST(InfoCollector, CarriesSlotParamsThrough) {
  const SlotParams params{0.5, 50.0};
  const InfoCollector collector = make_collector(params);
  auto endpoints = make_endpoints({-80.0});
  const BaseStation bs(20000.0);
  for (auto& endpoint : endpoints) endpoint.buffer.begin_slot();
  const SlotContext ctx = collector.collect(3, endpoints, bs);
  EXPECT_DOUBLE_EQ(ctx.params.tau_s, 0.5);
  EXPECT_DOUBLE_EQ(ctx.params.delta_kb, 50.0);
  // capacity: floor(0.5 * 20000 / 50) = 200
  EXPECT_EQ(ctx.capacity_units, 200);
  EXPECT_EQ(ctx.slot, 3);
}

TEST(InfoCollector, RejectsInvalidConstruction) {
  EXPECT_THROW(InfoCollector(SlotParams{0.0, 100.0}, make_paper_link_model(),
                             paper_3g_profile()),
               Error);
  EXPECT_THROW(InfoCollector(SlotParams{1.0, 0.0}, make_paper_link_model(),
                             paper_3g_profile()),
               Error);
  LinkModel incomplete;
  EXPECT_THROW(InfoCollector(SlotParams{}, incomplete, paper_3g_profile()), Error);
}

TEST(InfoCollector, RejectsNegativeSlot) {
  const InfoCollector collector = make_collector();
  auto endpoints = make_endpoints({-80.0});
  const BaseStation bs(20000.0);
  EXPECT_THROW((void)collector.collect(-1, endpoints, bs), Error);
}

}  // namespace
}  // namespace jstream
