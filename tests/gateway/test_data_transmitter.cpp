#include "gateway/data_transmitter.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "net/base_station.hpp"
#include "test_helpers.hpp"

namespace jstream {
namespace {

using testing::make_collector;
using testing::make_endpoints;

struct TransmitterFixture {
  std::vector<UserEndpoint> endpoints = make_endpoints({-80.0, -110.0}, 400.0, 50000.0);
  InfoCollector collector = make_collector();
  BaseStation bs{20000.0};
  DataReceiver receiver{2};
  DataTransmitter transmitter;

  SlotContext begin(std::int64_t slot) {
    receiver.begin_slot(1.0);
    for (auto& endpoint : endpoints) endpoint.buffer.begin_slot();
    return collector.collect(slot, endpoints, bs);
  }

  void end() {
    for (auto& endpoint : endpoints) endpoint.buffer.end_slot();
  }
};

TEST(DataTransmitter, AppliesAllocationWithEq3Energy) {
  TransmitterFixture fx;
  const SlotContext ctx = fx.begin(0);
  Allocation alloc = Allocation::zeros(2);
  alloc.units = {5, 2};
  const SlotOutcome outcome = fx.transmitter.apply(ctx, alloc, fx.endpoints, fx.receiver);
  fx.end();

  // d = phi * delta; E = P(sig) * d (Eq. 3).
  EXPECT_DOUBLE_EQ(outcome.kb[0], 500.0);
  EXPECT_DOUBLE_EQ(outcome.kb[1], 200.0);
  const double p0 = -0.167 + 1560.0 / 2303.0;  // P(-80)
  const double p1 = -0.167 + 1560.0 / 329.0;   // P(-110)
  EXPECT_NEAR(outcome.trans_mj[0], p0 * 500.0, 1e-9);
  EXPECT_NEAR(outcome.trans_mj[1], p1 * 200.0, 1e-9);
  // Eq. 5: transmitting slot carries no tail energy.
  EXPECT_DOUBLE_EQ(outcome.tail_mj[0], 0.0);
  EXPECT_DOUBLE_EQ(outcome.energy_mj(0), outcome.trans_mj[0]);
  EXPECT_DOUBLE_EQ(fx.endpoints[0].delivered_kb, 500.0);
}

TEST(DataTransmitter, IdleUserPaysTailOnceRadioPromoted) {
  TransmitterFixture fx;
  // Slot 0: user 0 transmits; slot 1: both idle.
  Allocation alloc = Allocation::zeros(2);
  alloc.units = {1, 0};
  (void)fx.transmitter.apply(fx.begin(0), alloc, fx.endpoints, fx.receiver);
  fx.end();
  const SlotOutcome outcome =
      fx.transmitter.apply(fx.begin(1), Allocation::zeros(2), fx.endpoints, fx.receiver);
  fx.end();
  EXPECT_NEAR(outcome.tail_mj[0], 732.83, 1e-6);  // first tail second in DCH
  EXPECT_DOUBLE_EQ(outcome.tail_mj[1], 0.0);      // user 1 never transmitted
}

TEST(DataTransmitter, RebufferMatchesEq8ColdStart) {
  TransmitterFixture fx;
  Allocation alloc = Allocation::zeros(2);
  alloc.units = {5, 0};
  const SlotOutcome outcome = fx.transmitter.apply(fx.begin(0), alloc, fx.endpoints, fx.receiver);
  fx.end();
  // Both buffers are empty at the start of slot 0 regardless of allocation.
  EXPECT_DOUBLE_EQ(outcome.rebuffer_s[0], 1.0);
  EXPECT_DOUBLE_EQ(outcome.rebuffer_s[1], 1.0);
}

TEST(DataTransmitter, NeedIsTauTimesBitrateCappedByRemaining) {
  TransmitterFixture fx;
  fx.endpoints[1].delivered_kb = 49900.0;  // only 100 KB left
  const SlotContext ctx = fx.begin(0);
  const SlotOutcome outcome =
      fx.transmitter.apply(ctx, Allocation::zeros(2), fx.endpoints, fx.receiver);
  fx.end();
  EXPECT_DOUBLE_EQ(outcome.need_kb[0], 400.0);
  EXPECT_DOUBLE_EQ(outcome.need_kb[1], 100.0);
}

TEST(DataTransmitter, FinalShardIsPartial) {
  TransmitterFixture fx;
  fx.endpoints[0].delivered_kb = 49950.0;  // 50 KB left, cap = 1 unit
  const SlotContext ctx = fx.begin(0);
  Allocation alloc = Allocation::zeros(2);
  alloc.units = {1, 0};
  const SlotOutcome outcome = fx.transmitter.apply(ctx, alloc, fx.endpoints, fx.receiver);
  fx.end();
  EXPECT_DOUBLE_EQ(outcome.kb[0], 50.0);
  EXPECT_DOUBLE_EQ(fx.endpoints[0].remaining_kb(), 0.0);
}

TEST(DataTransmitter, DeliveredPlaybackSecondsReachBuffer) {
  TransmitterFixture fx;
  const SlotContext ctx = fx.begin(0);
  Allocation alloc = Allocation::zeros(2);
  alloc.units = {4, 0};  // 400 KB at 400 KB/s = 1 s of playback
  (void)fx.transmitter.apply(ctx, alloc, fx.endpoints, fx.receiver);
  fx.end();
  for (auto& endpoint : fx.endpoints) endpoint.buffer.begin_slot();
  EXPECT_DOUBLE_EQ(fx.endpoints[0].buffer.occupancy_s(), 1.0);
  for (auto& endpoint : fx.endpoints) endpoint.buffer.end_slot();
}

TEST(DataTransmitter, RejectsInfeasibleAllocations) {
  TransmitterFixture fx;
  const SlotContext ctx = fx.begin(0);
  Allocation over_link = Allocation::zeros(2);
  over_link.units = {9999, 0};
  EXPECT_THROW((void)fx.transmitter.apply(ctx, over_link, fx.endpoints, fx.receiver),
               Error);
  Allocation size_mismatch = Allocation::zeros(3);
  EXPECT_THROW(
      (void)fx.transmitter.apply(ctx, size_mismatch, fx.endpoints, fx.receiver), Error);
  fx.end();
}

}  // namespace
}  // namespace jstream
