// Gateway behaviour for sessions that arrive mid-run (dynamic user traffic).
#include <gtest/gtest.h>

#include "baselines/default_scheduler.hpp"
#include "gateway/framework.hpp"
#include "test_helpers.hpp"

namespace jstream {
namespace {

using testing::make_collector;
using testing::make_endpoint;

TEST(Arrivals, EndpointArrivalPredicate) {
  UserEndpoint endpoint = make_endpoint(-70.0, 400.0, 1000.0);
  endpoint.start_slot = 5;
  EXPECT_FALSE(endpoint.arrived(0));
  EXPECT_FALSE(endpoint.arrived(4));
  EXPECT_TRUE(endpoint.arrived(5));
  EXPECT_TRUE(endpoint.arrived(100));
}

TEST(Arrivals, CollectorZerosCapBeforeArrival) {
  std::vector<UserEndpoint> endpoints;
  endpoints.push_back(make_endpoint(-70.0, 400.0, 1000.0));
  endpoints[0].start_slot = 3;
  const InfoCollector collector = make_collector();
  const BaseStation bs(20000.0);
  for (auto& e : endpoints) e.buffer.begin_slot();
  const SlotContext early = collector.collect(0, endpoints, bs);
  EXPECT_FALSE(early.users[0].arrived);
  EXPECT_FALSE(early.users[0].needs_data);
  EXPECT_EQ(early.users[0].alloc_cap_units, 0);
  const SlotContext later = collector.collect(3, endpoints, bs);
  EXPECT_TRUE(later.users[0].arrived);
  EXPECT_GT(later.users[0].alloc_cap_units, 0);
  for (auto& e : endpoints) e.buffer.end_slot();
}

TEST(Arrivals, NoRebufferChargedBeforeArrival) {
  std::vector<UserEndpoint> endpoints;
  endpoints.push_back(make_endpoint(-70.0, 400.0, 800.0));
  endpoints[0].start_slot = 4;
  const BaseStation bs(20000.0);
  Framework framework(make_collector(), std::make_unique<DefaultScheduler>(),
                      SchedulingMode::kBaseline, 1);
  double pre_arrival_rebuffer = 0.0;
  double post_arrival_rebuffer = 0.0;
  for (std::int64_t slot = 0; slot < 10; ++slot) {
    const SlotOutcome outcome = framework.run_slot(slot, endpoints, bs);
    if (slot < 4) {
      pre_arrival_rebuffer += outcome.rebuffer_s[0];
      EXPECT_EQ(outcome.units[0], 0);
    } else {
      post_arrival_rebuffer += outcome.rebuffer_s[0];
    }
  }
  EXPECT_DOUBLE_EQ(pre_arrival_rebuffer, 0.0);
  // The arrival slot itself is a cold start: exactly one stall slot, then the
  // strong link fills the buffer.
  EXPECT_GE(post_arrival_rebuffer, 1.0);
  EXPECT_TRUE(endpoints[0].buffer.playback_finished());
}

TEST(Arrivals, NeedIsZeroBeforeArrival) {
  std::vector<UserEndpoint> endpoints;
  endpoints.push_back(make_endpoint(-70.0, 400.0, 800.0));
  endpoints[0].start_slot = 2;
  const BaseStation bs(20000.0);
  Framework framework(make_collector(), std::make_unique<DefaultScheduler>(),
                      SchedulingMode::kBaseline, 1);
  const SlotOutcome outcome = framework.run_slot(0, endpoints, bs);
  EXPECT_DOUBLE_EQ(outcome.need_kb[0], 0.0);
}

}  // namespace
}  // namespace jstream
