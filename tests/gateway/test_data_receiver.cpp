#include "gateway/data_receiver.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace jstream {
namespace {

TEST(DataReceiver, FetchAndDrainRoundTrip) {
  DataReceiver receiver(2);
  receiver.begin_slot(1.0);
  EXPECT_DOUBLE_EQ(receiver.fetch_from_origin(0, 500.0), 500.0);
  EXPECT_DOUBLE_EQ(receiver.buffered_kb(0), 500.0);
  receiver.drain(0, 200.0);
  EXPECT_DOUBLE_EQ(receiver.buffered_kb(0), 300.0);
  EXPECT_DOUBLE_EQ(receiver.buffered_kb(1), 0.0);
}

TEST(DataReceiver, UnlimitedBackhaulByDefault) {
  DataReceiver receiver(1);
  receiver.begin_slot(1.0);
  EXPECT_DOUBLE_EQ(receiver.fetch_from_origin(0, 1e9), 1e9);
}

TEST(DataReceiver, FiniteBackhaulCapsPerSlot) {
  DataReceiver receiver(2, /*backhaul_kbps=*/1000.0);
  receiver.begin_slot(1.0);
  EXPECT_DOUBLE_EQ(receiver.fetch_from_origin(0, 800.0), 800.0);
  // Only 200 KB of budget left this slot, shared across flows.
  EXPECT_DOUBLE_EQ(receiver.fetch_from_origin(1, 800.0), 200.0);
  // Budget refreshes next slot.
  receiver.begin_slot(1.0);
  EXPECT_DOUBLE_EQ(receiver.fetch_from_origin(1, 800.0), 800.0);
}

TEST(DataReceiver, BackhaulScalesWithSlotLength) {
  DataReceiver receiver(1, 1000.0);
  receiver.begin_slot(2.0);
  EXPECT_DOUBLE_EQ(receiver.fetch_from_origin(0, 5000.0), 2000.0);
}

TEST(DataReceiver, DrainRejectsOverdraw) {
  DataReceiver receiver(1);
  receiver.begin_slot(1.0);
  (void)receiver.fetch_from_origin(0, 100.0);
  EXPECT_THROW(receiver.drain(0, 200.0), Error);
  // Sub-nanobyte rounding is tolerated.
  EXPECT_NO_THROW(receiver.drain(0, 100.0 + 1e-10));
  EXPECT_DOUBLE_EQ(receiver.buffered_kb(0), 0.0);
}

TEST(DataReceiver, TracksOtherTrafficWithoutQueueing) {
  DataReceiver receiver(1);
  receiver.pass_through_other_traffic(123.0);
  receiver.pass_through_other_traffic(77.0);
  EXPECT_DOUBLE_EQ(receiver.other_traffic_kb(), 200.0);
  EXPECT_DOUBLE_EQ(receiver.buffered_kb(0), 0.0);
}

TEST(DataReceiver, RejectsInvalidArguments) {
  EXPECT_THROW(DataReceiver(0), Error);
  EXPECT_THROW(DataReceiver(1, 0.0), Error);
  DataReceiver receiver(1);
  receiver.begin_slot(1.0);
  EXPECT_THROW((void)receiver.fetch_from_origin(5, 1.0), Error);
  EXPECT_THROW(receiver.drain(5, 1.0), Error);
  EXPECT_THROW((void)receiver.buffered_kb(5), Error);
  EXPECT_THROW(receiver.begin_slot(0.0), Error);
}

}  // namespace
}  // namespace jstream
