#include "gateway/framework.hpp"

#include <gtest/gtest.h>

#include "baselines/default_scheduler.hpp"
#include "common/error.hpp"
#include "test_helpers.hpp"

namespace jstream {
namespace {

using testing::make_collector;
using testing::make_endpoints;

TEST(Framework, RunsSlotsEndToEnd) {
  auto endpoints = make_endpoints({-70.0, -90.0}, 400.0, 2000.0);
  const BaseStation bs(20000.0);
  Framework framework(make_collector(), std::make_unique<DefaultScheduler>(),
                      SchedulingMode::kBaseline, endpoints.size());
  double delivered = 0.0;
  for (std::int64_t slot = 0; slot < 10; ++slot) {
    const SlotOutcome outcome = framework.run_slot(slot, endpoints, bs);
    for (double kb : outcome.kb) delivered += kb;
  }
  // 2 x 2000 KB of content, links far faster than that.
  EXPECT_DOUBLE_EQ(delivered, 4000.0);
  EXPECT_DOUBLE_EQ(endpoints[0].remaining_kb(), 0.0);
  EXPECT_DOUBLE_EQ(endpoints[1].remaining_kb(), 0.0);
}

TEST(Framework, LastContextAndAllocationExposed) {
  auto endpoints = make_endpoints({-70.0});
  const BaseStation bs(20000.0);
  Framework framework(make_collector(), std::make_unique<DefaultScheduler>(),
                      SchedulingMode::kBaseline, 1);
  (void)framework.run_slot(0, endpoints, bs);
  EXPECT_EQ(framework.last_context().slot, 0);
  EXPECT_EQ(framework.last_allocation().user_count(), 1u);
  EXPECT_GT(framework.last_allocation().total_units(), 0);
}

TEST(Framework, PlaybackAdvancesAcrossSlots) {
  auto endpoints = make_endpoints({-70.0}, 400.0, 800.0);  // 2 s of content
  const BaseStation bs(20000.0);
  Framework framework(make_collector(), std::make_unique<DefaultScheduler>(),
                      SchedulingMode::kBaseline, 1);
  for (std::int64_t slot = 0; slot < 5; ++slot) {
    (void)framework.run_slot(slot, endpoints, bs);
  }
  EXPECT_TRUE(endpoints[0].buffer.playback_finished());
  EXPECT_FALSE(endpoints[0].active());
}

TEST(Framework, ModeIsRecorded) {
  Framework framework(make_collector(), std::make_unique<DefaultScheduler>(),
                      SchedulingMode::kEnergyMinimization, 1);
  EXPECT_EQ(framework.mode(), SchedulingMode::kEnergyMinimization);
  EXPECT_EQ(framework.scheduler().name(), "default");
}

TEST(Framework, RejectsNullSchedulerAndWrongPopulation) {
  EXPECT_THROW(Framework(make_collector(), nullptr, SchedulingMode::kBaseline, 1),
               Error);
  auto endpoints = make_endpoints({-70.0, -80.0});
  const BaseStation bs(20000.0);
  Framework framework(make_collector(), std::make_unique<DefaultScheduler>(),
                      SchedulingMode::kBaseline, 3);
  EXPECT_THROW((void)framework.run_slot(0, endpoints, bs), Error);
}

}  // namespace
}  // namespace jstream
