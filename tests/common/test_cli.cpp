#include "common/cli.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace jstream {
namespace {

Cli make() {
  Cli cli("prog", "test");
  cli.add_flag("users", "40", "number of users");
  cli.add_flag("rate", "1.5", "a rate");
  cli.add_flag("verbose", "false", "flag");
  cli.add_flag("name", "abc", "a string");
  return cli;
}

TEST(Cli, DefaultsApplyWithoutArgs) {
  Cli cli = make();
  const char* argv[] = {"prog"};
  cli.parse(1, argv);
  EXPECT_EQ(cli.get_int("users"), 40);
  EXPECT_DOUBLE_EQ(cli.get_double("rate"), 1.5);
  EXPECT_FALSE(cli.get_bool("verbose"));
  EXPECT_EQ(cli.get_string("name"), "abc");
  EXPECT_FALSE(cli.provided("users"));
}

TEST(Cli, ParsesSpaceAndEqualsForms) {
  Cli cli = make();
  const char* argv[] = {"prog", "--users", "20", "--rate=2.25", "--verbose=true"};
  cli.parse(5, argv);
  EXPECT_EQ(cli.get_int("users"), 20);
  EXPECT_DOUBLE_EQ(cli.get_double("rate"), 2.25);
  EXPECT_TRUE(cli.get_bool("verbose"));
  EXPECT_TRUE(cli.provided("users"));
}

TEST(Cli, HelpRequested) {
  Cli cli = make();
  const char* argv[] = {"prog", "--help"};
  cli.parse(2, argv);
  EXPECT_TRUE(cli.help_requested());
  EXPECT_NE(cli.help().find("--users"), std::string::npos);
}

TEST(Cli, BareBooleanSwitches) {
  // Flags whose default is true/false act as switches: `--verbose` alone
  // means true, whether trailing or followed by another flag.
  Cli cli = make();
  const char* argv[] = {"prog", "--verbose", "--users", "10"};
  cli.parse(4, argv);
  EXPECT_TRUE(cli.get_bool("verbose"));
  EXPECT_EQ(cli.get_int("users"), 10);

  Cli trailing = make();
  const char* argv2[] = {"prog", "--verbose"};
  trailing.parse(2, argv2);
  EXPECT_TRUE(trailing.get_bool("verbose"));

  // Explicit values still work.
  Cli explicit_value = make();
  const char* argv3[] = {"prog", "--verbose", "false"};
  explicit_value.parse(3, argv3);
  EXPECT_FALSE(explicit_value.get_bool("verbose"));
}

TEST(Cli, RejectsUnknownFlag) {
  Cli cli = make();
  const char* argv[] = {"prog", "--bogus", "1"};
  EXPECT_THROW(cli.parse(3, argv), Error);
}

TEST(Cli, RejectsMissingValue) {
  Cli cli = make();
  const char* argv[] = {"prog", "--users"};
  EXPECT_THROW(cli.parse(2, argv), Error);
}

TEST(Cli, RejectsMalformedNumbers) {
  Cli cli = make();
  const char* argv[] = {"prog", "--users", "12abc"};
  cli.parse(3, argv);
  EXPECT_THROW((void)cli.get_int("users"), Error);
  const char* argv2[] = {"prog", "--rate", "fast"};
  Cli cli2 = make();
  cli2.parse(3, argv2);
  EXPECT_THROW((void)cli2.get_double("rate"), Error);
}

TEST(Cli, RejectsDuplicateDeclaration) {
  Cli cli("prog", "test");
  cli.add_flag("x", "1", "");
  EXPECT_THROW(cli.add_flag("x", "2", ""), Error);
}

TEST(EnvInt, FallsBackOnUnsetOrGarbage) {
  EXPECT_EQ(env_int("JSTREAM_DEFINITELY_UNSET_VAR", 7), 7);
  ::setenv("JSTREAM_TEST_ENV_INT", "123", 1);
  EXPECT_EQ(env_int("JSTREAM_TEST_ENV_INT", 7), 123);
  ::setenv("JSTREAM_TEST_ENV_INT", "12x", 1);
  EXPECT_EQ(env_int("JSTREAM_TEST_ENV_INT", 7), 7);
  ::unsetenv("JSTREAM_TEST_ENV_INT");
}

}  // namespace
}  // namespace jstream
