#include "common/table.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace jstream {
namespace {

TEST(FormatDouble, FixedPrecision) {
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
  EXPECT_EQ(format_double(2.0, 0), "2");
  EXPECT_EQ(format_double(-0.5, 1), "-0.5");
}

TEST(Table, RendersAlignedColumns) {
  Table table("t", {"name", "value"});
  table.row({"a", "1"});
  table.row({"long-name", "22"});
  const std::string text = table.render();
  EXPECT_NE(text.find("== t =="), std::string::npos);
  EXPECT_NE(text.find("long-name"), std::string::npos);
  // Header line pads "name" to the widest cell.
  EXPECT_NE(text.find("name       value"), std::string::npos);
}

TEST(Table, NumericRowHelperFormats) {
  Table table("t", {"x", "y", "z"});
  table.row("row1", {1.23456, 7.0}, 2);
  const std::string text = table.render();
  EXPECT_NE(text.find("1.23"), std::string::npos);
  EXPECT_NE(text.find("7.00"), std::string::npos);
}

TEST(Table, RejectsWidthMismatchAndEmptyHeader) {
  Table table("t", {"a", "b"});
  EXPECT_THROW(table.row({"only-one"}), Error);
  EXPECT_THROW(Table("t", {}), Error);
}

TEST(Table, RuleSeparatesHeaderFromBody) {
  Table table("", {"a"});
  table.row({"v"});
  const std::string text = table.render();
  EXPECT_NE(text.find('-'), std::string::npos);
}

}  // namespace
}  // namespace jstream
