#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/error.hpp"
#include "common/units.hpp"

namespace jstream {
namespace {

TEST(Percentile, ExactValuesOnSmallSample) {
  const std::vector<double> v{1.0, 2.0, 3.0, 4.0, 5.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(percentile(v, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.25), 2.0);
}

TEST(Percentile, InterpolatesBetweenRanks) {
  const std::vector<double> v{0.0, 10.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.5), 5.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.75), 7.5);
}

TEST(Percentile, RejectsEmptyAndBadQ) {
  EXPECT_THROW((void)percentile({}, 0.5), Error);
  const std::vector<double> v{1.0};
  EXPECT_THROW((void)percentile(v, 1.5), Error);
  EXPECT_THROW((void)percentile(v, -0.1), Error);
}

TEST(Summarize, BasicMoments) {
  const std::vector<double> v{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  const Summary s = summarize(v);
  EXPECT_EQ(s.count, 8u);
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_NEAR(s.stddev, 2.138, 1e-3);  // sample stddev
  EXPECT_DOUBLE_EQ(s.min, 2.0);
  EXPECT_DOUBLE_EQ(s.max, 9.0);
}

TEST(Summarize, EmptyIsZeroed) {
  const Summary s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
}

TEST(EmpiricalCdf, EndsAtOneAndIsMonotone) {
  std::vector<double> v;
  for (int i = 0; i < 1000; ++i) v.push_back(as_double(i % 37));
  const auto cdf = empirical_cdf(v, 20);
  ASSERT_FALSE(cdf.empty());
  EXPECT_DOUBLE_EQ(cdf.back().fraction, 1.0);
  for (std::size_t i = 1; i < cdf.size(); ++i) {
    EXPECT_GE(cdf[i].value, cdf[i - 1].value);
    EXPECT_GE(cdf[i].fraction, cdf[i - 1].fraction);
  }
}

TEST(EmpiricalCdf, DownsamplesToRequestedPoints) {
  std::vector<double> v(1000, 1.0);
  EXPECT_EQ(empirical_cdf(v, 10).size(), 10u);
  EXPECT_EQ(empirical_cdf(v, 5000).size(), 1000u);
}

TEST(FractionAtMost, CountsInclusive) {
  const std::vector<double> v{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(fraction_at_most(v, 2.0), 0.5);
  EXPECT_DOUBLE_EQ(fraction_at_most(v, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(fraction_at_most(v, 10.0), 1.0);
  EXPECT_DOUBLE_EQ(fraction_at_most({}, 1.0), 0.0);
}

TEST(JainIndex, KnownValues) {
  // Equal shares -> 1.
  EXPECT_DOUBLE_EQ(jain_index(std::vector<double>{2.0, 2.0, 2.0}), 1.0);
  // One user takes everything among n -> 1/n.
  EXPECT_NEAR(jain_index(std::vector<double>{1.0, 0.0, 0.0, 0.0}), 0.25, 1e-12);
  // Degenerate inputs.
  EXPECT_DOUBLE_EQ(jain_index({}), 1.0);
  EXPECT_DOUBLE_EQ(jain_index(std::vector<double>{0.0, 0.0}), 1.0);
}

TEST(JainIndex, BoundedBetweenOneOverNAndOne) {
  Summary dummy;  // silence unused warnings pattern
  (void)dummy;
  const std::vector<double> shares{0.1, 0.9, 0.4, 0.0, 1.3};
  const double j = jain_index(shares);
  EXPECT_GE(j, 1.0 / as_double(shares.size()));
  EXPECT_LE(j, 1.0);
}

TEST(RunningStat, MatchesBatchStatistics) {
  const std::vector<double> v{1.5, 2.5, 3.5, 10.0, -4.0};
  RunningStat rs;
  for (double x : v) rs.add(x);
  const Summary s = summarize(v);
  EXPECT_EQ(rs.count(), v.size());
  EXPECT_NEAR(rs.mean(), s.mean, 1e-12);
  EXPECT_NEAR(rs.stddev(), s.stddev, 1e-12);
}

TEST(RunningStat, ZeroVarianceForSingleton) {
  RunningStat rs;
  rs.add(7.0);
  EXPECT_DOUBLE_EQ(rs.variance(), 0.0);
  EXPECT_DOUBLE_EQ(rs.mean(), 7.0);
}

TEST(StudentT, MatchesTabulatedCriticalValues) {
  EXPECT_NEAR(student_t_975(1), 12.706, 1e-3);
  EXPECT_NEAR(student_t_975(4), 2.776, 1e-3);
  EXPECT_NEAR(student_t_975(9), 2.262, 1e-3);
  EXPECT_NEAR(student_t_975(29), 2.045, 1e-3);
  // Beyond the table, the expansion must stay close to published values
  // (t_40 = 2.021, t_60 = 2.000, t_120 = 1.980).
  EXPECT_NEAR(student_t_975(40), 2.021, 2e-3);
  EXPECT_NEAR(student_t_975(60), 2.000, 2e-3);
  EXPECT_NEAR(student_t_975(120), 1.980, 2e-3);
}

TEST(StudentT, MonotoneDecreasingTowardNormal) {
  double prev = student_t_975(1);
  for (std::size_t df = 2; df <= 200; ++df) {
    const double t = student_t_975(df);
    EXPECT_LE(t, prev + 1e-12) << "df " << df;
    prev = t;
  }
  EXPECT_GT(student_t_975(100000), 1.9599);
  EXPECT_NEAR(student_t_975(100000), 1.95996, 1e-4);
}

TEST(StudentT, RejectsZeroDegreesOfFreedom) {
  EXPECT_THROW((void)student_t_975(0), Error);
}

}  // namespace
}  // namespace jstream
