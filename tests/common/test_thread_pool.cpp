#include "common/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>

namespace jstream {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(2);
  auto future = pool.submit([] { return 21 * 2; });
  EXPECT_EQ(future.get(), 42);
}

TEST(ThreadPool, ZeroSelectsHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, DrainsAllTasksBeforeDestruction) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(3);
    for (int i = 0; i < 200; ++i) {
      (void)pool.submit([&counter] { counter.fetch_add(1); });
    }
  }
  EXPECT_EQ(counter.load(), 200);
}

TEST(ParallelFor, CoversAllIndicesExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(100);
  parallel_for(pool, hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, PropagatesTaskExceptions) {
  ThreadPool pool(2);
  EXPECT_THROW(parallel_for(pool, 8,
                            [](std::size_t i) {
                              if (i == 3) throw std::runtime_error("boom");
                            }),
               std::runtime_error);
}

TEST(ParallelMap, PreservesIndexOrder) {
  ThreadPool pool(4);
  const auto results =
      parallel_map(pool, 50, [](std::size_t i) { return static_cast<int>(i * i); });
  ASSERT_EQ(results.size(), 50u);
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i], static_cast<int>(i * i));
  }
}

}  // namespace
}  // namespace jstream
