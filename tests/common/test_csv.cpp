#include "common/csv.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/error.hpp"

namespace jstream {
namespace {

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST(CsvEscape, PlainCellUntouched) {
  EXPECT_EQ(csv_escape("hello"), "hello");
  EXPECT_EQ(csv_escape("3.14"), "3.14");
}

TEST(CsvEscape, QuotesCommasAndNewlines) {
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(csv_escape("line1\nline2"), "\"line1\nline2\"");
}

TEST(CsvWriter, WritesHeaderAndRows) {
  const std::string path = temp_path("jstream_csv_test1.csv");
  {
    CsvWriter writer(path, {"a", "b"});
    writer.row(std::vector<std::string>{"1", "x"});
    writer.row(std::vector<double>{2.5, 3.0});
    EXPECT_EQ(writer.rows_written(), 2u);
  }
  EXPECT_EQ(slurp(path), "a,b\n1,x\n2.5,3\n");
  std::filesystem::remove(path);
}

TEST(CsvWriter, RejectsWidthMismatch) {
  const std::string path = temp_path("jstream_csv_test2.csv");
  CsvWriter writer(path, {"a", "b"});
  EXPECT_THROW(writer.row(std::vector<std::string>{"only-one"}), Error);
  std::filesystem::remove(path);
}

TEST(CsvWriter, RejectsEmptyHeaderAndBadPath) {
  EXPECT_THROW(CsvWriter("/nonexistent-dir-xyz/file.csv", {"a"}), Error);
  const std::string path = temp_path("jstream_csv_test3.csv");
  EXPECT_THROW(CsvWriter(path, {}), Error);
  std::filesystem::remove(path);
}

TEST(CsvWriter, DoubleRoundTripPrecision) {
  const std::string path = temp_path("jstream_csv_test4.csv");
  {
    CsvWriter writer(path, {"v"});
    writer.row(std::vector<double>{0.1234567890123456789});
  }
  const std::string text = slurp(path);
  const double parsed = std::stod(text.substr(text.find('\n') + 1));
  EXPECT_DOUBLE_EQ(parsed, 0.1234567890123456789);
  std::filesystem::remove(path);
}

TEST(CsvReader, ParsesHeaderAndRows) {
  const CsvTable table = parse_csv("a,b,c\n1,2,3\n4,5,6\n");
  EXPECT_EQ(table.header, (std::vector<std::string>{"a", "b", "c"}));
  ASSERT_EQ(table.rows.size(), 2u);
  EXPECT_EQ(table.rows[0], (std::vector<std::string>{"1", "2", "3"}));
  EXPECT_EQ(table.column("b"), 1u);
  EXPECT_THROW((void)table.column("missing"), Error);
}

TEST(CsvReader, HandlesQuotingCrlfAndMissingTrailingNewline) {
  const CsvTable table =
      parse_csv("name,note\r\n\"a,b\",\"say \"\"hi\"\"\"\r\nplain,\"multi\nline\"");
  ASSERT_EQ(table.rows.size(), 2u);
  EXPECT_EQ(table.rows[0][0], "a,b");
  EXPECT_EQ(table.rows[0][1], "say \"hi\"");
  EXPECT_EQ(table.rows[1][1], "multi\nline");
}

TEST(CsvReader, EmptyAndQuotedEmptyCells) {
  const CsvTable table = parse_csv("a,b\n,\n\"\",x\n");
  ASSERT_EQ(table.rows.size(), 2u);
  EXPECT_EQ(table.rows[0], (std::vector<std::string>{"", ""}));
  EXPECT_EQ(table.rows[1], (std::vector<std::string>{"", "x"}));
}

TEST(CsvReader, RejectsMalformedInput) {
  EXPECT_THROW(parse_csv(""), Error);                    // no header
  EXPECT_THROW(parse_csv("a,b\n1\n"), Error);            // width mismatch
  EXPECT_THROW(parse_csv("a\n\"unterminated"), Error);   // open quote
  EXPECT_THROW(parse_csv("a\nx\"y\n"), Error);           // quote mid-cell
  EXPECT_THROW(read_csv("/nonexistent-dir-xyz/in.csv"), Error);
}

TEST(CsvReader, WriterReaderRoundTrip) {
  const std::string path = temp_path("jstream_csv_roundtrip.csv");
  {
    CsvWriter writer(path, {"k", "v"});
    writer.row(std::vector<std::string>{"plain", "1.5"});
    writer.row(std::vector<std::string>{"with,comma", "say \"hi\"\nbye"});
  }
  const CsvTable table = read_csv(path);
  EXPECT_EQ(table.header, (std::vector<std::string>{"k", "v"}));
  ASSERT_EQ(table.rows.size(), 2u);
  EXPECT_EQ(table.rows[1][0], "with,comma");
  EXPECT_EQ(table.rows[1][1], "say \"hi\"\nbye");
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace jstream
