#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

namespace jstream {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform(-110.0, -50.0);
    EXPECT_GE(u, -110.0);
    EXPECT_LT(u, -50.0);
  }
}

TEST(Rng, UniformMeanIsCentered) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform(0.0, 10.0);
  EXPECT_NEAR(sum / n, 5.0, 0.1);
}

TEST(Rng, UniformIntCoversInclusiveRange) {
  Rng rng(13);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t v = rng.uniform_int(1, 6);
    EXPECT_GE(v, 1);
    EXPECT_LE(v, 6);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 6u);
}

TEST(Rng, GaussianMomentsMatch) {
  Rng rng(17);
  const int n = 200000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double g = rng.gaussian(3.0, 2.0);
    sum += g;
    sum_sq += g * g;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 3.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.05);
}

TEST(Rng, SplitStreamsAreIndependentOfParentConsumption) {
  // The split result must depend only on the parent's state at split time.
  Rng parent(99);
  Rng child_before = parent.split(5);
  Rng parent_copy(99);
  Rng child_again = parent_copy.split(5);
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(child_before.next_u64(), child_again.next_u64());
  }
}

TEST(Rng, SplitStreamsDifferByIndex) {
  Rng parent(99);
  Rng a = parent.split(0);
  Rng b = parent.split(1);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

}  // namespace
}  // namespace jstream
