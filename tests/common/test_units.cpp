#include "common/units.hpp"

#include <gtest/gtest.h>

namespace jstream {
namespace {

TEST(Units, MbKbRoundTrip) {
  EXPECT_DOUBLE_EQ(mb_to_kb(350.0), 350000.0);
  EXPECT_DOUBLE_EQ(kb_to_mb(350000.0), 350.0);
  EXPECT_DOUBLE_EQ(kb_to_mb(mb_to_kb(123.456)), 123.456);
}

TEST(Units, EnergyConversions) {
  EXPECT_DOUBLE_EQ(mj_to_j(1500.0), 1.5);
  EXPECT_DOUBLE_EQ(j_to_mj(1.5), 1500.0);
  EXPECT_DOUBLE_EQ(mw_to_w(732.83), 0.73283);
}

TEST(Units, ConstexprUsable) {
  static_assert(mb_to_kb(1.0) == 1000.0);
  static_assert(mj_to_j(1000.0) == 1.0);
  SUCCEED();
}

}  // namespace
}  // namespace jstream
