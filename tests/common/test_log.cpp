#include "common/log.hpp"

#include <gtest/gtest.h>

namespace jstream {
namespace {

class LogLevelGuard {
 public:
  LogLevelGuard() : saved_(log_level()) {}
  ~LogLevelGuard() { set_log_level(saved_); }

 private:
  LogLevel saved_;
};

TEST(Log, LevelRoundTrips) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kDebug);
  EXPECT_EQ(log_level(), LogLevel::kDebug);
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
}

TEST(Log, EmittingBelowLevelIsSafeNoop) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kOff);
  // Nothing to assert on stderr here; the contract is simply "does not
  // crash or throw at any level".
  EXPECT_NO_THROW(log_debug("hidden"));
  EXPECT_NO_THROW(log_info("hidden"));
  EXPECT_NO_THROW(log_warn("hidden"));
  EXPECT_NO_THROW(log_error("hidden"));
}

TEST(Log, DefaultLevelSuppressesInfo) {
  // The library default is kWarn so simulations stay quiet.
  LogLevelGuard guard;
  set_log_level(LogLevel::kWarn);
  EXPECT_LT(static_cast<int>(LogLevel::kInfo), static_cast<int>(log_level()));
}

}  // namespace
}  // namespace jstream
