// Differential tests for jstream_lint: every rule must fire on its bad
// fixture and stay silent on its good twin, waivers must be honored (and
// malformed ones rejected), and the real src/ tree must be clean — the same
// contract `ctest -L lint` / scripts/check.sh stage 7 enforce in CI.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analyzer.hpp"
#include "rules.hpp"
#include "common/units.hpp"

namespace jstream::lint {
namespace {

namespace fs = std::filesystem;

std::string read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

FileReport lint_fixture(const std::string& name) {
  const fs::path path = fs::path(JSTREAM_LINT_FIXTURE_DIR) / name;
  const std::string source = read_file(path);
  const FileModel model = build_model(name, source);
  return run_rules(model);
}

std::size_t count_rule(const FileReport& report, const std::string& rule) {
  return checked_size(
      std::count_if(report.diagnostics.begin(), report.diagnostics.end(),
                    [&rule](const Diagnostic& d) { return d.rule == rule; }));
}

TEST(LintHotPathAlloc, FiresOnEveryAllocationKind) {
  const FileReport report = lint_fixture("hot_path_alloc_bad.cpp");
  // new, make_unique, std::function, std::string, and two un-reserved
  // push_backs (one direct, one in the transitively-hot helper).
  EXPECT_EQ(count_rule(report, "hot-path-alloc"), 6u);
  EXPECT_EQ(report.diagnostics.size(), 6u);
}

TEST(LintHotPathAlloc, PropagatesHotnessThroughSameTuCalls) {
  const FileReport report = lint_fixture("hot_path_alloc_bad.cpp");
  // transitively_hot carries no annotation; its push_back is only reachable
  // through run_slot's call, so a diagnostic there proves propagation.
  const bool helper_flagged = std::any_of(
      report.diagnostics.begin(), report.diagnostics.end(),
      [](const Diagnostic& d) {
        return d.message.find("'transitively_hot'") != std::string::npos;
      });
  EXPECT_TRUE(helper_flagged);
}

TEST(LintHotPathAlloc, SilentOnReservedGrowthAndColdAllocation) {
  const FileReport report = lint_fixture("hot_path_alloc_good.cpp");
  EXPECT_TRUE(report.diagnostics.empty());
}

TEST(LintRngDiscipline, FiresOnEveryBannedSource) {
  const FileReport report = lint_fixture("rng_discipline_bad.cpp");
  // rand, srand, random_device, time(nullptr), argless mt19937, and a
  // root Rng constructed without .split().
  EXPECT_EQ(count_rule(report, "rng-discipline"), 6u);
}

TEST(LintRngDiscipline, SilentOnSplitDerivedStreams) {
  const FileReport report = lint_fixture("rng_discipline_good.cpp");
  EXPECT_TRUE(report.diagnostics.empty());
}

TEST(LintDigestDeterminism, FiresOnUnorderedIterationAndFloat) {
  const FileReport report = lint_fixture("digest_determinism_bad.cpp");
  EXPECT_EQ(count_rule(report, "digest-determinism"), 2u);
  const bool has_unordered = std::any_of(
      report.diagnostics.begin(), report.diagnostics.end(),
      [](const Diagnostic& d) {
        return d.message.find("range-for over unordered") != std::string::npos;
      });
  const bool has_float = std::any_of(
      report.diagnostics.begin(), report.diagnostics.end(),
      [](const Diagnostic& d) {
        return d.message.find("'float'") != std::string::npos;
      });
  EXPECT_TRUE(has_unordered);
  EXPECT_TRUE(has_float);
}

TEST(LintDigestDeterminism, SilentOnOrderedIterationAndPointLookup) {
  const FileReport report = lint_fixture("digest_determinism_good.cpp");
  EXPECT_TRUE(report.diagnostics.empty());
}

TEST(LintCheckedNarrowing, FiresOncePerFamilyCrossing) {
  const FileReport report = lint_fixture("checked_narrowing_bad.cpp");
  EXPECT_EQ(count_rule(report, "checked-narrowing"), 5u);
  // Every diagnostic carries an actionable fix-it naming a units.hpp helper.
  for (const Diagnostic& diag : report.diagnostics) {
    EXPECT_FALSE(diag.fixit.empty()) << diag.message;
  }
}

TEST(LintCheckedNarrowing, SilentOnHelpersAndOutOfFamilyCasts) {
  const FileReport report = lint_fixture("checked_narrowing_good.cpp");
  EXPECT_TRUE(report.diagnostics.empty());
}

TEST(LintRequireFinalize, FiresOnUnguardedLaneRead) {
  const FileReport report = lint_fixture("require_finalize_bad.cpp");
  EXPECT_EQ(count_rule(report, "require-finalize"), 1u);
  EXPECT_NE(report.diagnostics.at(0).message.find("signal_dbm"),
            std::string::npos);
}

TEST(LintRequireFinalize, SilentWhenEitherGuardFormPrecedesTheRead) {
  const FileReport report = lint_fixture("require_finalize_good.cpp");
  EXPECT_TRUE(report.diagnostics.empty());
}

TEST(LintSuppressions, TrailingOwnLineAndWrappedWaiversAreHonored) {
  const FileReport report = lint_fixture("suppressions_good.cpp");
  EXPECT_TRUE(report.diagnostics.empty());
  ASSERT_EQ(report.suppressed.size(), 3u);
  for (const HonoredSuppression& sup : report.suppressed) {
    EXPECT_EQ(sup.rule, "checked-narrowing");
    EXPECT_FALSE(sup.reason.empty());
  }
  // The wrapped waiver's continuation line folds into its reason.
  const bool wrapped_reason_joined = std::any_of(
      report.suppressed.begin(), report.suppressed.end(),
      [](const HonoredSuppression& sup) {
        return sup.reason.find("covers the code below") != std::string::npos;
      });
  EXPECT_TRUE(wrapped_reason_joined);
}

TEST(LintSuppressions, MalformedOrMismatchedWaiversLeaveTheGateShut) {
  const FileReport report = lint_fixture("suppressions_bad.cpp");
  EXPECT_TRUE(report.suppressed.empty());
  // All three casts still fire...
  EXPECT_EQ(count_rule(report, "checked-narrowing"), 3u);
  // ...and the reason-less + rule-less waivers are diagnostics themselves.
  EXPECT_EQ(count_rule(report, "suppression"), 2u);
}

// The repo-clean regression: the gate the lint binary enforces in CI, run
// in-process so a violation introduced anywhere in src/ fails this suite
// even if the jstream_lint executable itself is stale.
TEST(LintRepoClean, SrcTreeHasZeroDiagnostics) {
  std::vector<fs::path> files;
  for (const auto& entry : fs::recursive_directory_iterator(JSTREAM_SRC_DIR)) {
    if (!entry.is_regular_file()) continue;
    const std::string ext = entry.path().extension().string();
    if (ext == ".cpp" || ext == ".hpp" || ext == ".cc" || ext == ".h") {
      files.push_back(entry.path());
    }
  }
  std::sort(files.begin(), files.end());
  ASSERT_GT(files.size(), 100u) << "src/ walk looks wrong";
  std::size_t honored = 0;
  for (const fs::path& path : files) {
    const FileModel model = build_model(path.string(), read_file(path));
    const FileReport report = run_rules(model);
    honored += report.suppressed.size();
    for (const Diagnostic& diag : report.diagnostics) {
      ADD_FAILURE() << diag.file << ":" << diag.line << ": [" << diag.rule
                    << "] " << diag.message;
    }
  }
  // Waivers stay rare and auditable; a sudden jump means someone is
  // suppressing their way around the gate.
  EXPECT_LE(honored, 12u);
}

TEST(LintRuleRegistry, EveryRuleIdIsCoveredByAFixture) {
  // Guards against adding a rule without a differential fixture: the ids the
  // binary advertises must all appear in this suite's expectations.
  const std::vector<std::string> covered = {
      "hot-path-alloc",   "rng-discipline",   "digest-determinism",
      "checked-narrowing", "require-finalize", "suppression",
  };
  EXPECT_EQ(all_rule_ids(), covered);
}

}  // namespace
}  // namespace jstream::lint
