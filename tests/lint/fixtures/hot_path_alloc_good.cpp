// Fixture: the patterns R1 must NOT flag — reserved growth on the hot path,
// and heap use in functions the hot-path call graph never reaches.
#include <memory>
#include <vector>

namespace fixture {

struct Workspace {
  std::vector<int> scratch;
};

// jstream: hot-path
void run_slot(Workspace& ws, int n) {
  ws.scratch.clear();
  ws.scratch.reserve(static_cast<unsigned>(n));
  for (int i = 0; i < n; ++i) ws.scratch.push_back(i);  // reserved above: clean
}

// Setup code may allocate freely: nothing here is reachable from run_slot.
std::unique_ptr<Workspace> make_workspace() {
  auto ws = std::make_unique<Workspace>();
  ws->scratch.push_back(0);
  return ws;
}

}  // namespace fixture
