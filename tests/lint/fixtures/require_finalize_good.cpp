// Fixture: R5-clean lane access — both accepted guard forms, each
// established before the first lane read in its function.
#include <cstddef>

namespace fixture {

struct SlotSoa {
  const double* signal_dbm = nullptr;
  const double* energy_per_kb = nullptr;
  std::size_t size() const;
};

struct SlotContext {
  SlotSoa soa;
  void finalize();
};

void require(bool ok, const char* what);

double sum_after_finalize(SlotContext& ctx, std::size_t n) {
  ctx.finalize();  // guard form 1: this function finalizes the mirror itself
  double sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) sum += ctx.soa.signal_dbm[i];
  return sum;
}

double sum_after_size_check(const SlotContext& ctx, std::size_t n) {
  require(ctx.soa.size() == n, "SlotContext::finalize() not called");  // form 2
  double sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) sum += ctx.soa.energy_per_kb[i];
  return sum;
}

}  // namespace fixture
