// Fixture: R5 trigger — reading an SoA lane with no finalize()/size() guard
// anywhere earlier in the function.
#include <cstddef>

namespace fixture {

struct SlotSoa {
  const double* signal_dbm = nullptr;
  const double* energy_per_kb = nullptr;
};

struct SlotContext {
  SlotSoa soa;
};

double sum_signal(const SlotContext& ctx, std::size_t n) {
  double sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    sum += ctx.soa.signal_dbm[i];  // unguarded lane read
  }
  return sum;
}

}  // namespace fixture
