// Fixture: R3 triggers. The RunMetrics mention below marks this TU as
// determinism-sensitive; the rule then bans unordered iteration and floats.
#include <string>
#include <unordered_map>

namespace fixture {

struct RunMetrics {
  double total_energy_mj = 0.0;
};

double render(const RunMetrics& metrics) {
  std::unordered_map<std::string, double> by_label;
  by_label["energy"] = metrics.total_energy_mj;
  double sum = 0.0;
  for (const auto& entry : by_label) {  // unordered iteration
    sum += entry.second;
  }
  float narrowed = 0.0f;  // float in metrics code
  return sum + narrowed;
}

}  // namespace fixture
