// Fixture: every R1 trigger in one hot TU. Not compiled — lexed by
// jstream_lint in tests/lint/test_lint.cpp.
#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace fixture {

struct Workspace {
  std::vector<int> scratch;
};

// Helper with no annotation of its own: it must inherit hotness through the
// same-TU call graph below.
void transitively_hot(std::vector<int>& out) {
  out.push_back(7);  // un-reserved push_back
}

// jstream: hot-path
void run_slot(Workspace& ws) {
  auto* leak = new int(4);                        // operator new
  auto owned = std::make_unique<int>(5);          // make_unique
  std::function<int(int)> cb = [](int x) { return x; };  // std::function
  std::string label = "slot";                     // std::string ctor
  ws.scratch.push_back(*leak + *owned + cb(1));   // un-reserved push_back
  transitively_hot(ws.scratch);
  delete leak;
}

}  // namespace fixture
