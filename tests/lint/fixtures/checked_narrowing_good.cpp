// Fixture: R4-clean conversions — the units.hpp helpers, plus casts outside
// the size/index/count/double families that the rule deliberately ignores
// (enum-to-int is idiomatic for telemetry payloads, unsigned for APIs).
#include <cstddef>
#include <cstdint>

namespace fixture {

enum class Mode { kIdle, kActive };

std::size_t checked_size(std::int64_t value);
std::int64_t checked_index(std::size_t value);
double as_double(std::int64_t value);

double convert(std::int64_t count, std::size_t index, Mode mode) {
  const std::size_t a = checked_size(count);
  const std::int64_t b = checked_index(index);
  const double c = as_double(count);
  const int d = static_cast<int>(mode);           // outside the family: clean
  const auto e = static_cast<unsigned>(count);    // outside the family: clean
  const auto f = std::int64_t{42};                // brace-init widening: clean
  return c + as_double(b + f) + as_double(static_cast<int>(a) + d + static_cast<int>(e));
}

}  // namespace fixture
