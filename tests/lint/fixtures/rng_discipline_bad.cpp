// Fixture: every R2 trigger. Not compiled — lexed by jstream_lint.
#include <cstdlib>
#include <ctime>
#include <random>

namespace fixture {

struct Rng {
  Rng split(unsigned long long stream) const;
};

int draw_everything_wrong() {
  int a = rand();                              // libc rand
  std::random_device entropy;                  // random_device
  std::srand(static_cast<unsigned>(time(nullptr)));  // time(nullptr)
  std::mt19937 engine;                         // argless engine
  Rng rooted(42);                              // Rng without .split()
  (void)entropy;
  (void)engine;
  (void)rooted;
  return a;
}

}  // namespace fixture
