// Fixture: well-formed waivers — trailing, own-line, and wrapped own-line
// forms all silence the diagnostic and surface in the honored list.
#include <cstddef>
#include <cstdint>

namespace fixture {

std::size_t trailing_form(std::uint64_t hash) {
  return static_cast<std::size_t>(hash ^ 0x9e37ULL);  // jstream-lint: allow(checked-narrowing) -- hash fold, not an index
}

std::size_t own_line_form(std::int64_t count) {
  // jstream-lint: allow(checked-narrowing) -- fixture exercises own-line coverage
  return static_cast<std::size_t>(count);
}

std::size_t wrapped_form(std::int64_t count) {
  // jstream-lint: allow(checked-narrowing) -- a waiver whose justification is
  // long enough to wrap onto a continuation line still covers the code below.
  return static_cast<std::size_t>(count);
}

}  // namespace fixture
