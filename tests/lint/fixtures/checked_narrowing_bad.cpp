// Fixture: R4 triggers — one raw cast per family the rule polices.
#include <cstddef>
#include <cstdint>

namespace fixture {

void cross_families(std::int64_t count, std::size_t index, double value) {
  auto a = static_cast<std::size_t>(count);
  auto b = static_cast<std::int64_t>(index);
  auto c = static_cast<std::int32_t>(count);
  auto d = static_cast<double>(count);
  auto e = static_cast<std::size_t>(value);
  (void)a;
  (void)b;
  (void)c;
  (void)d;
  (void)e;
}

}  // namespace fixture
