// Fixture: R2-clean randomness — every stream derives from a parent via
// .split(), and type mentions / parameters are not originations.
namespace fixture {

struct Rng {
  Rng split(unsigned long long stream) const;
  double uniform();
};

double consume(Rng& rng) { return rng.uniform(); }  // reference param: clean

double derive_streams(const Rng& parent) {
  Rng child = parent.split(0x5eedULL);   // assignment form: clean
  Rng nested(parent.split(1).split(2));  // ctor form, derives via split: clean
  return consume(child) + consume(nested);
}

}  // namespace fixture
