// Fixture: R3-clean rendering — ordered iteration and double precision in a
// determinism-sensitive TU (RunMetrics mention), plus unordered lookup that
// never iterates (allowed: only iteration order is hash-dependent).
#include <map>
#include <string>
#include <unordered_map>

namespace fixture {

struct RunMetrics {
  double total_energy_mj = 0.0;
};

double render(const RunMetrics& metrics) {
  std::map<std::string, double> by_label;
  by_label["energy"] = metrics.total_energy_mj;
  double sum = 0.0;
  for (const auto& entry : by_label) sum += entry.second;  // ordered: clean

  std::unordered_map<std::string, double> cache;
  cache["energy"] = sum;
  return cache.at("energy");  // point lookup, no iteration: clean
}

}  // namespace fixture
