// Fixture: malformed or mismatched waivers — each one leaves the gate shut.
#include <cstddef>
#include <cstdint>

namespace fixture {

std::size_t missing_reason(std::int64_t count) {
  // jstream-lint: allow(checked-narrowing)
  return static_cast<std::size_t>(count);  // still fires: waiver has no reason
}

std::size_t missing_rule_list(std::int64_t count) {
  // jstream-lint: this cast is fine, trust me
  return static_cast<std::size_t>(count);  // still fires: no allow(<rule>)
}

std::size_t wrong_rule(std::int64_t count) {
  // jstream-lint: allow(rng-discipline) -- waives a rule this line never broke
  return static_cast<std::size_t>(count);  // still fires: rule id mismatch
}

}  // namespace fixture
