#include "media/video_session.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "common/error.hpp"
#include "common/units.hpp"

namespace jstream {
namespace {

TEST(VideoSession, ConstantBitratePlaybackTimeIsSizeOverRate) {
  const VideoSession session(mb_to_kb(350.0), std::make_shared<ConstantBitrate>(500.0));
  EXPECT_NEAR(session.total_playback_s(), 350000.0 / 500.0, 1e-9);
  EXPECT_DOUBLE_EQ(session.size_kb(), 350000.0);
  EXPECT_DOUBLE_EQ(session.bitrate_kbps(42), 500.0);
  EXPECT_DOUBLE_EQ(session.max_bitrate_kbps(), 500.0);
}

TEST(VideoSession, PaperSizeRangeGivesExpectedDurations) {
  // 250 MB at 600 KB/s ~ 417 s; 500 MB at 300 KB/s ~ 1667 s.
  const VideoSession fast(mb_to_kb(250.0), std::make_shared<ConstantBitrate>(600.0));
  const VideoSession slow(mb_to_kb(500.0), std::make_shared<ConstantBitrate>(300.0));
  EXPECT_NEAR(fast.total_playback_s(), 416.67, 0.01);
  EXPECT_NEAR(slow.total_playback_s(), 1666.67, 0.01);
}

TEST(VideoSession, PiecewiseProfileIntegratesExactly) {
  // 100 slots at 400 KB/s (40000 KB) then 200 KB/s for the rest.
  auto profile = std::make_shared<PiecewiseBitrate>(
      std::vector<std::int64_t>{100}, std::vector<double>{400.0, 200.0});
  const VideoSession session(50000.0, profile, 1.0);
  // 40000 KB in the first 100 s, remaining 10000 KB at 200 KB/s = 50 s.
  EXPECT_NEAR(session.total_playback_s(), 150.0, 1e-9);
}

TEST(VideoSession, PartialFinalSlotHandled) {
  const VideoSession session(1050.0, std::make_shared<ConstantBitrate>(100.0), 1.0);
  EXPECT_NEAR(session.total_playback_s(), 10.5, 1e-9);
}

TEST(VideoSession, AdvancePlaybackMatchesConstantRate) {
  const VideoSession session(10000.0, std::make_shared<ConstantBitrate>(500.0));
  EXPECT_DOUBLE_EQ(session.advance_playback(0.0, 1000.0), 2.0);
  EXPECT_DOUBLE_EQ(session.advance_playback(7.3, 250.0), 0.5);
  EXPECT_DOUBLE_EQ(session.advance_playback(0.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(session.bitrate_at_time(3.7), 500.0);
}

TEST(VideoSession, AdvancePlaybackIntegratesAcrossRateChanges) {
  // 400 KB/s for the first 2 content-slots, then 200 KB/s.
  auto profile = std::make_shared<PiecewiseBitrate>(std::vector<std::int64_t>{2},
                                                    std::vector<double>{400.0, 200.0});
  const VideoSession session(2000.0, profile, 1.0);
  // 800 KB covers the first 2 s exactly.
  EXPECT_NEAR(session.advance_playback(0.0, 800.0), 2.0, 1e-12);
  // Crossing the boundary: 400 KB at t=1.5 -> 0.5 s at 400 + 1 s at 200.
  EXPECT_NEAR(session.advance_playback(1.5, 400.0), 1.5, 1e-12);
  EXPECT_DOUBLE_EQ(session.bitrate_at_time(1.9), 400.0);
  EXPECT_DOUBLE_EQ(session.bitrate_at_time(2.0), 200.0);
}

TEST(VideoSession, DeliveringWholeFileYieldsTotalPlayback) {
  auto profile = std::make_shared<PiecewiseBitrate>(
      std::vector<std::int64_t>{50, 100}, std::vector<double>{350.0, 550.0, 420.0});
  const VideoSession session(60000.0, profile, 1.0);
  // Sum of arbitrary chunk advances equals M exactly (content-timeline
  // consistency — the property VBR sessions rely on).
  double position = 0.0;
  double remaining = session.size_kb();
  while (remaining > 0.0) {
    const double kb = std::min(637.0, remaining);
    position += session.advance_playback(position, kb);
    remaining -= kb;
  }
  EXPECT_NEAR(position, session.total_playback_s(), 1e-6);
}

TEST(VideoSession, RejectsInvalidConstruction) {
  EXPECT_THROW(VideoSession(0.0, std::make_shared<ConstantBitrate>(100.0)), Error);
  EXPECT_THROW(VideoSession(100.0, nullptr), Error);
  EXPECT_THROW(VideoSession(100.0, std::make_shared<ConstantBitrate>(100.0), 0.0),
               Error);
}

}  // namespace
}  // namespace jstream
