#include "media/bitrate_profile.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace jstream {
namespace {

TEST(ConstantBitrate, SameEverywhere) {
  const ConstantBitrate profile(450.0);
  EXPECT_DOUBLE_EQ(profile.bitrate_kbps(0), 450.0);
  EXPECT_DOUBLE_EQ(profile.bitrate_kbps(123456), 450.0);
  EXPECT_DOUBLE_EQ(profile.max_bitrate_kbps(), 450.0);
}

TEST(ConstantBitrate, RejectsNonPositive) {
  EXPECT_THROW(ConstantBitrate(0.0), Error);
  EXPECT_THROW(ConstantBitrate(-10.0), Error);
}

TEST(PiecewiseBitrate, SegmentsAndFinalExtension) {
  const PiecewiseBitrate profile({100, 200}, {300.0, 500.0, 400.0});
  EXPECT_DOUBLE_EQ(profile.bitrate_kbps(0), 300.0);
  EXPECT_DOUBLE_EQ(profile.bitrate_kbps(99), 300.0);
  EXPECT_DOUBLE_EQ(profile.bitrate_kbps(100), 500.0);
  EXPECT_DOUBLE_EQ(profile.bitrate_kbps(199), 500.0);
  EXPECT_DOUBLE_EQ(profile.bitrate_kbps(200), 400.0);
  EXPECT_DOUBLE_EQ(profile.bitrate_kbps(100000), 400.0);
  EXPECT_DOUBLE_EQ(profile.max_bitrate_kbps(), 500.0);
}

TEST(PiecewiseBitrate, RejectsMalformedInput) {
  EXPECT_THROW(PiecewiseBitrate({100}, {300.0}), Error);            // too few rates
  EXPECT_THROW(PiecewiseBitrate({200, 100}, {1.0, 2.0, 3.0}), Error);  // not sorted
  EXPECT_THROW(PiecewiseBitrate({100, 100}, {1.0, 2.0, 3.0}), Error);  // duplicate
  EXPECT_THROW(PiecewiseBitrate({100}, {1.0, -2.0}), Error);        // negative rate
}

TEST(RandomWalkBitrate, StaysInBoundsAndHolds) {
  RandomWalkBitrate::Params params;
  params.hold_slots = 10;
  const RandomWalkBitrate profile(params, Rng(5), 1000);
  for (std::int64_t slot = 0; slot < 1000; ++slot) {
    const double rate = profile.bitrate_kbps(slot);
    EXPECT_GE(rate, params.min_kbps);
    EXPECT_LE(rate, params.max_kbps);
    // Constant within a hold period.
    EXPECT_DOUBLE_EQ(rate, profile.bitrate_kbps((slot / 10) * 10));
  }
  EXPECT_DOUBLE_EQ(profile.max_bitrate_kbps(), params.max_kbps);
}

TEST(RandomWalkBitrate, StepBoundRespected) {
  RandomWalkBitrate::Params params;
  params.hold_slots = 5;
  params.step_kbps = 20.0;
  const RandomWalkBitrate profile(params, Rng(9), 500);
  for (std::int64_t period = 1; period < 100; ++period) {
    const double prev = profile.bitrate_kbps((period - 1) * 5);
    const double cur = profile.bitrate_kbps(period * 5);
    EXPECT_LE(std::abs(cur - prev), params.step_kbps + 1e-9);
  }
}

TEST(RandomWalkBitrate, DeterministicForSameSeed) {
  RandomWalkBitrate::Params params;
  const RandomWalkBitrate a(params, Rng(3), 300);
  const RandomWalkBitrate b(params, Rng(3), 300);
  for (std::int64_t slot = 0; slot < 300; slot += 7) {
    EXPECT_DOUBLE_EQ(a.bitrate_kbps(slot), b.bitrate_kbps(slot));
  }
}

TEST(RandomWalkBitrate, RejectsBadParams) {
  RandomWalkBitrate::Params params;
  params.min_kbps = 600.0;
  params.max_kbps = 300.0;
  EXPECT_THROW(RandomWalkBitrate(params, Rng(1), 100), Error);
}

}  // namespace
}  // namespace jstream
