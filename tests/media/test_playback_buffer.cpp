#include "media/playback_buffer.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace jstream {
namespace {

TEST(PlaybackBuffer, ColdStartStallsFullSlot) {
  PlaybackBuffer buffer(100.0, 1.0);
  buffer.begin_slot();
  // r(0) = 0 -> c(0) = tau (Eq. 8).
  EXPECT_DOUBLE_EQ(buffer.rebuffer_s(), 1.0);
  buffer.end_slot();
  EXPECT_DOUBLE_EQ(buffer.elapsed_s(), 0.0);
}

TEST(PlaybackBuffer, ShardUsableOnlyNextSlot) {
  PlaybackBuffer buffer(100.0, 1.0);
  buffer.begin_slot();
  buffer.deliver(5.0);
  // The shard delivered this slot does not rescue this slot's stall.
  EXPECT_DOUBLE_EQ(buffer.rebuffer_s(), 1.0);
  buffer.end_slot();
  buffer.begin_slot();
  // Eq. 7: r(1) = max(0 - 1, 0) + 5 = 5.
  EXPECT_DOUBLE_EQ(buffer.occupancy_s(), 5.0);
  EXPECT_DOUBLE_EQ(buffer.rebuffer_s(), 0.0);
  buffer.end_slot();
  EXPECT_DOUBLE_EQ(buffer.elapsed_s(), 1.0);
}

TEST(PlaybackBuffer, OccupancyRecursionEq7) {
  PlaybackBuffer buffer(100.0, 1.0);
  buffer.begin_slot();
  buffer.deliver(2.5);
  buffer.end_slot();
  buffer.begin_slot();  // r = 2.5
  EXPECT_DOUBLE_EQ(buffer.occupancy_s(), 2.5);
  buffer.deliver(1.0);
  buffer.end_slot();
  buffer.begin_slot();  // r = max(2.5 - 1, 0) + 1.0 = 2.5
  EXPECT_DOUBLE_EQ(buffer.occupancy_s(), 2.5);
  buffer.end_slot();
  buffer.begin_slot();  // r = 1.5
  EXPECT_DOUBLE_EQ(buffer.occupancy_s(), 1.5);
}

TEST(PlaybackBuffer, PartialStallWhenOccupancyBelowTau) {
  PlaybackBuffer buffer(100.0, 1.0);
  buffer.begin_slot();
  buffer.deliver(0.4);
  buffer.end_slot();
  buffer.begin_slot();
  EXPECT_DOUBLE_EQ(buffer.occupancy_s(), 0.4);
  EXPECT_NEAR(buffer.rebuffer_s(), 0.6, 1e-12);
  buffer.end_slot();
  EXPECT_NEAR(buffer.elapsed_s(), 0.4, 1e-12);
}

TEST(PlaybackBuffer, NoRebufferAfterPlaybackFinished) {
  PlaybackBuffer buffer(2.0, 1.0);
  buffer.begin_slot();
  buffer.deliver(2.0);
  buffer.end_slot();
  buffer.begin_slot();
  buffer.end_slot();  // plays 1 s
  buffer.begin_slot();
  buffer.end_slot();  // plays the second 1 s -> finished
  EXPECT_TRUE(buffer.playback_finished());
  buffer.begin_slot();
  EXPECT_DOUBLE_EQ(buffer.rebuffer_s(), 0.0);  // Eq. 8's m >= M branch
  buffer.end_slot();
}

TEST(PlaybackBuffer, ElapsedNeverExceedsTotal) {
  PlaybackBuffer buffer(1.5, 1.0);
  buffer.begin_slot();
  buffer.deliver(10.0);
  buffer.end_slot();
  for (int i = 0; i < 5; ++i) {
    buffer.begin_slot();
    buffer.end_slot();
  }
  EXPECT_DOUBLE_EQ(buffer.elapsed_s(), 1.5);
  EXPECT_TRUE(buffer.playback_finished());
}

TEST(PlaybackBuffer, ManySmallShardsFinishDespiteRounding) {
  // Regression: summing hundreds of shard durations must not leave the
  // session stuck a few ULP short of M (see kPlaybackCompletionEps_s).
  const double bitrate = 437.3;
  const double total_kb = 30000.0;
  PlaybackBuffer buffer(total_kb / bitrate, 1.0);
  double remaining_kb = total_kb;
  for (int slot = 0; slot < 200 && !buffer.playback_finished(); ++slot) {
    buffer.begin_slot();
    const double kb = std::min(637.7, remaining_kb);
    remaining_kb -= kb;
    buffer.deliver(kb / bitrate);
    buffer.end_slot();
  }
  EXPECT_TRUE(buffer.playback_finished());
}

TEST(PlaybackBuffer, EnforcesSlotProtocol) {
  PlaybackBuffer buffer(10.0, 1.0);
  EXPECT_THROW(buffer.end_slot(), Error);
  EXPECT_THROW((void)buffer.rebuffer_s(), Error);
  EXPECT_THROW(buffer.deliver(1.0), Error);
  buffer.begin_slot();
  EXPECT_THROW(buffer.begin_slot(), Error);
  EXPECT_THROW(buffer.deliver(-1.0), Error);
}

TEST(PlaybackBuffer, RejectsInvalidConstruction) {
  EXPECT_THROW(PlaybackBuffer(0.0, 1.0), Error);
  EXPECT_THROW(PlaybackBuffer(10.0, 0.0), Error);
}

}  // namespace
}  // namespace jstream
