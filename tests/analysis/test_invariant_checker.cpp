// Paper-invariant validator tests. The acceptance case: an intentionally
// broken scheduler (capacity overshoot) wired through the real Framework is
// caught by the validator with the correct equation named — before the
// DataTransmitter's own feasibility guard sees the allocation. Clean runs of
// the real schedulers must check every slot and raise nothing.

#include "analysis/invariant_checker.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "baselines/default_scheduler.hpp"
#include "baselines/factory.hpp"
#include "core/ema.hpp"
#include "gateway/framework.hpp"
#include "net/base_station.hpp"
#include "test_helpers.hpp"

namespace jstream::analysis {
namespace {

using testing::make_collector;
using testing::make_endpoints;

/// Restores the process-wide validation flag on scope exit.
struct ValidationGuard {
  bool previous = validation_enabled();
  ValidationGuard() { set_validation_enabled(true); }
  ~ValidationGuard() { set_validation_enabled(previous); }
};

/// Overshoots the base-station capacity: grants every user its full link cap
/// even when the sum exceeds constraint (2).
class CapacityOvershootScheduler : public Scheduler {
 public:
  [[nodiscard]] std::string name() const override { return "broken-capacity"; }
  void reset(std::size_t) override {}
  [[nodiscard]] Allocation allocate(const SlotContext& ctx) override {
    Allocation alloc = Allocation::zeros(ctx.users.size());
    for (std::size_t i = 0; i < ctx.users.size(); ++i) {
      alloc.units[i] = ctx.users[i].link_units;
    }
    return alloc;
  }
};

/// Overshoots one user's per-link bound (constraint (1)).
class LinkOvershootScheduler : public Scheduler {
 public:
  [[nodiscard]] std::string name() const override { return "broken-link"; }
  void reset(std::size_t) override {}
  [[nodiscard]] Allocation allocate(const SlotContext& ctx) override {
    Allocation alloc = Allocation::zeros(ctx.users.size());
    if (!ctx.users.empty()) alloc.units[0] = ctx.users[0].alloc_cap_units + 1;
    return alloc;
  }
};

/// Reports virtual queues frozen at zero, violating the Eq. 16 recursion
/// from the second validated slot onward.
class FrozenQueueScheduler : public Scheduler {
 public:
  [[nodiscard]] std::string name() const override { return "broken-queues"; }
  void reset(std::size_t users) override { queues_.assign(users, 0.0); }
  [[nodiscard]] Allocation allocate(const SlotContext& ctx) override {
    return Allocation::zeros(ctx.users.size());
  }
  [[nodiscard]] std::span<const double> virtual_queues() const override {
    return queues_;
  }

 private:
  std::vector<double> queues_;
};

TEST(InvariantChecker, RuntimeFlagToggles) {
  const bool before = validation_enabled();
  set_validation_enabled(true);
  EXPECT_TRUE(validation_enabled());
  set_validation_enabled(false);
  EXPECT_FALSE(validation_enabled());
  set_validation_enabled(before);
}

TEST(InvariantChecker, CapacityOvershootCaughtThroughFramework) {
  const ValidationGuard guard;
  // Two strong users whose combined link rate dwarfs a small cell: granting
  // both their link caps overshoots Eq. (2).
  auto endpoints = make_endpoints({-60.0, -60.0}, 400.0, 1e6);
  const BaseStation bs(500.0);  // 500 kbps cell << 2 links
  Framework framework(make_collector(), std::make_unique<CapacityOvershootScheduler>(),
                      SchedulingMode::kBaseline, endpoints.size());
  try {
    (void)framework.run_slot(0, endpoints, bs);
    FAIL() << "capacity overshoot not caught";
  } catch (const InvariantViolation& violation) {
    EXPECT_EQ(violation.violation().equation, "Eq. (2)");
    EXPECT_EQ(violation.violation().scheduler, "broken-capacity");
    EXPECT_EQ(violation.violation().slot, 0);
    EXPECT_NE(std::string(violation.what()).find("Eq. (2)"), std::string::npos);
  }
}

TEST(InvariantChecker, LinkOvershootCaughtWithUserNamed) {
  const ValidationGuard guard;
  auto endpoints = make_endpoints({-80.0}, 400.0, 1e6);
  const BaseStation bs(20000.0);
  Framework framework(make_collector(), std::make_unique<LinkOvershootScheduler>(),
                      SchedulingMode::kBaseline, endpoints.size());
  try {
    (void)framework.run_slot(0, endpoints, bs);
    FAIL() << "link overshoot not caught";
  } catch (const InvariantViolation& violation) {
    EXPECT_EQ(violation.violation().equation, "Eq. (1)");
    EXPECT_EQ(violation.violation().user, 0);
  }
}

TEST(InvariantChecker, FrozenVirtualQueuesViolateEq16) {
  const ValidationGuard guard;
  auto endpoints = make_endpoints({-80.0}, 400.0, 1e6);
  const BaseStation bs(20000.0);
  Framework framework(make_collector(), std::make_unique<FrozenQueueScheduler>(),
                      SchedulingMode::kBaseline, endpoints.size());
  // Slot 0 seeds the shadow recursion (adopted as-is); slot 1 must advance by
  // tau - t with t = 0, so a queue frozen at zero breaks the recursion.
  (void)framework.run_slot(0, endpoints, bs);
  try {
    (void)framework.run_slot(1, endpoints, bs);
    FAIL() << "frozen queue not caught";
  } catch (const InvariantViolation& violation) {
    EXPECT_EQ(violation.violation().equation, "Eq. (16)");
    EXPECT_EQ(violation.violation().slot, 1);
  }
}

TEST(InvariantChecker, CleanRunChecksEverySlot) {
  const ValidationGuard guard;
  auto endpoints = make_endpoints({-70.0, -85.0, -95.0}, 400.0, 4000.0);
  const BaseStation bs(20000.0);
  Framework framework(make_collector(), std::make_unique<DefaultScheduler>(),
                      SchedulingMode::kBaseline, endpoints.size());
  constexpr std::int64_t kSlots = 50;
  for (std::int64_t slot = 0; slot < kSlots; ++slot) {
    (void)framework.run_slot(slot, endpoints, bs);
  }
  EXPECT_EQ(framework.validator().slots_checked(), kSlots);
}

TEST(InvariantChecker, EmaQueueRecursionValidatesClean) {
  const ValidationGuard guard;
  auto endpoints = make_endpoints({-70.0, -90.0}, 400.0, 8000.0);
  const BaseStation bs(5000.0);
  SchedulerOptions options;
  Framework framework(make_collector(),
                      make_scheduler("ema", options),
                      SchedulingMode::kEnergyMinimization, endpoints.size());
  for (std::int64_t slot = 0; slot < 80; ++slot) {
    (void)framework.run_slot(slot, endpoints, bs);
  }
  EXPECT_EQ(framework.validator().slots_checked(), 80);
}

TEST(InvariantChecker, DisabledValidatorChecksNothing) {
  set_validation_enabled(false);
  auto endpoints = make_endpoints({-60.0, -60.0}, 400.0, 1e6);
  const BaseStation bs(500.0);
  Framework framework(make_collector(), std::make_unique<CapacityOvershootScheduler>(),
                      SchedulingMode::kBaseline, endpoints.size());
  // With validation off the transmitter's own guard still rejects the
  // allocation — but as a generic Error, not an InvariantViolation, and the
  // validator never runs.
  EXPECT_THROW((void)framework.run_slot(0, endpoints, bs), Error);
  EXPECT_EQ(framework.validator().slots_checked(), 0);
}

TEST(InvariantChecker, MidRunEnableResyncs) {
  auto endpoints = make_endpoints({-70.0, -90.0}, 400.0, 8000.0);
  const BaseStation bs(5000.0);
  SchedulerOptions options;
  Framework framework(make_collector(),
                      make_scheduler("ema", options),
                      SchedulingMode::kEnergyMinimization, endpoints.size());
  set_validation_enabled(false);
  for (std::int64_t slot = 0; slot < 10; ++slot) {
    (void)framework.run_slot(slot, endpoints, bs);
  }
  // Enabling mid-run must adopt the scheduler's current queue levels and RRC
  // clocks instead of raising spurious Eq. 16 / RRC violations.
  set_validation_enabled(true);
  for (std::int64_t slot = 10; slot < 40; ++slot) {
    (void)framework.run_slot(slot, endpoints, bs);
  }
  set_validation_enabled(false);
  EXPECT_EQ(framework.validator().slots_checked(), 30);
}

TEST(InvariantChecker, ViolationToStringNamesEverything) {
  Violation violation;
  violation.scheduler = "ema";
  violation.equation = "Eq. (7)";
  violation.slot = 12;
  violation.user = 3;
  violation.detail = "buffer went negative";
  const std::string text = violation.to_string();
  EXPECT_NE(text.find("ema"), std::string::npos);
  EXPECT_NE(text.find("Eq. (7)"), std::string::npos);
  EXPECT_NE(text.find("12"), std::string::npos);
  EXPECT_NE(text.find("user=3"), std::string::npos);
  EXPECT_NE(text.find("buffer went negative"), std::string::npos);
}

TEST(InvariantChecker, AllFactorySchedulersValidateClean) {
  const ValidationGuard guard;
  for (const char* name : {"default", "throttling", "onoff", "salsa",
                           "estreamer", "rtma", "ema", "ema-fast"}) {
    auto endpoints = make_endpoints({-70.0, -82.0, -94.0}, 400.0, 6000.0);
    const BaseStation bs(3000.0);
    SchedulerOptions options;
    Framework framework(make_collector(),
                        make_scheduler(name, options),
                        SchedulingMode::kBaseline, endpoints.size());
    for (std::int64_t slot = 0; slot < 60; ++slot) {
      (void)framework.run_slot(slot, endpoints, bs);
    }
    EXPECT_EQ(framework.validator().slots_checked(), 60) << name;
  }
}

}  // namespace
}  // namespace jstream::analysis
