// Dynamic-traffic scenario: sessions arrive over time (Poisson-like spread),
// content is VBR, and the base station's spare capacity follows a load wave.
// Compares the framework's two modes against the default strategy under this
// churn and writes full per-user CSV reports.
//
//   ./dynamic_traffic --users 30 --spread 600 --out /tmp/jstream_report
#include <cstdio>

#include "baselines/factory.hpp"
#include "common/cli.hpp"
#include "sim/experiment.hpp"
#include "sim/report.hpp"

using namespace jstream;

int main(int argc, char** argv) {
  try {
    Cli cli("dynamic_traffic", "arrivals + VBR + capacity wave comparison");
    cli.add_flag("users", "30", "number of sessions over the run");
    cli.add_flag("spread", "600", "arrival spread in slots");
    cli.add_flag("seed", "42", "scenario seed");
    cli.add_flag("out", "", "directory for per-user CSV reports (empty = off)");
    cli.parse(argc, argv);
    if (cli.help_requested()) {
      std::fputs(cli.help().c_str(), stdout);
      return 0;
    }

    ScenarioConfig scenario = paper_scenario(
        static_cast<std::size_t>(cli.get_int("users")),
        static_cast<std::uint64_t>(cli.get_int("seed")));
    scenario.arrival_spread_slots = cli.get_int("spread");
    scenario.vbr = true;
    scenario.capacity_kind = CapacityKind::kSine;
    scenario.capacity_wave_fraction = 0.3;
    scenario.capacity_wave_period = 900.0;

    const DefaultReference reference = run_default_reference(scenario);
    std::printf("scenario: %zu users arriving over %lld slots, VBR %g-%g KB/s, "
                "capacity 20 MB/s +-30%%\n\n",
                scenario.users, static_cast<long long>(scenario.arrival_spread_slots),
                scenario.bitrate_min_kbps, scenario.bitrate_max_kbps);

    const std::string out_dir = cli.get_string("out");
    std::vector<RunMetrics> results;
    for (const char* name : {"default", "rtma", "ema"}) {
      ExperimentSpec spec{name, name, scenario, {}};
      if (spec.scheduler == "rtma") spec.options = rtma_options_for_alpha(1.0, reference);
      if (spec.scheduler == "ema") {
        spec.options.ema.v_weight =
            calibrate_v_for_rebuffer(scenario, reference.rebuffer_per_user_slot_s);
      }
      results.push_back(run_experiment(spec));
      std::printf("%s\n", summarize_run(name, results.back()).c_str());
      if (!out_dir.empty()) {
        export_run_csv(out_dir, name, results.back());
        std::printf("  [csv] %s/%s_{users,slots}.csv\n", out_dir.c_str(), name);
      }
    }
    const double rebuffer_delta =
        100.0 * (1.0 - results[1].avg_rebuffer_per_user_slot_s() /
                           std::max(results[0].avg_rebuffer_per_user_slot_s(), 1e-9));
    std::printf("\nUnder this churn RTM mode changes rebuffering by %+.0f%% vs the\n"
                "default. Note that staggered arrivals lighten the instantaneous\n"
                "load: with little competition the default strategy is already\n"
                "near-idle most slots, so EM mode has less energy to reclaim than\n"
                "in the paper's all-at-once setting (see EXPERIMENTS.md).\n",
                -rebuffer_delta);
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "dynamic_traffic: error: %s\n", e.what());
    return 1;
  }
}
