// Runs every scheduler the library ships over the same scenario — the RTM and
// EM modes of the framework plus all five baselines — and prints one
// comparison table. This is the "which mode do I want?" view an operator
// would consult (Section VI-C of the paper).
#include <cstdio>

#include "baselines/factory.hpp"
#include "common/cli.hpp"
#include "common/table.hpp"
#include "sim/experiment.hpp"
#include "sim/sweep.hpp"

using namespace jstream;

int main(int argc, char** argv) {
  try {
    Cli cli("mode_comparison", "all schedulers side by side on one scenario");
    cli.add_flag("users", "40", "number of users");
    cli.add_flag("seed", "42", "scenario seed");
    cli.add_flag("threads", "0", "parallel runs (0 = hardware concurrency)");
    cli.parse(argc, argv);
    if (cli.help_requested()) {
      std::fputs(cli.help().c_str(), stdout);
      return 0;
    }

    ScenarioConfig scenario = paper_scenario(
        static_cast<std::size_t>(cli.get_int("users")),
        static_cast<std::uint64_t>(cli.get_int("seed")));
    const DefaultReference reference = run_default_reference(scenario);

    std::vector<ExperimentSpec> specs;
    for (const std::string& name : scheduler_names()) {
      ExperimentSpec spec;
      spec.label = name;
      spec.scheduler = name;
      spec.scenario = scenario;
      if (name == "rtma") spec.options = rtma_options_for_alpha(1.0, reference);
      specs.push_back(spec);
    }

    const std::vector<RunMetrics> results =
        run_sweep(specs, static_cast<std::size_t>(cli.get_int("threads")));

    Table table("scheduler comparison (" + std::to_string(scenario.users) + " users)",
                {"scheduler", "PE (mJ/us)", "tail (mJ/us)", "PC (ms/us)", "fairness",
                 "total E (J)", "total rebuf (s)"});
    for (std::size_t i = 0; i < specs.size(); ++i) {
      const RunMetrics& m = results[i];
      table.row(specs[i].label,
                {m.avg_energy_per_user_slot_mj(), m.avg_tail_per_user_slot_mj(),
                 1000.0 * m.avg_rebuffer_per_user_slot_s(), m.mean_fairness(),
                 m.total_energy_mj() / 1000.0, m.total_rebuffer_s()},
                1);
    }
    table.print();
    std::printf("\nRTM mode (rtma) minimizes rebuffering under Phi = E_default;\n"
                "EM mode (ema) minimizes energy; tune V or use "
                "calibrate_v_for_rebuffer for a rebuffering bound.\n");
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "mode_comparison: error: %s\n", e.what());
    return 1;
  }
}
