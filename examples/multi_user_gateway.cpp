// Drives the gateway framework directly — the four paper components wired by
// hand instead of through the Simulator — and narrates a few slots, showing
// where the cross-layer information flows: RSSI and bitrates into the
// Information Collector, allocations out of the Scheduler, energy and buffer
// updates out of the Data Transmitter.
#include <cstdio>

#include "baselines/factory.hpp"
#include "common/cli.hpp"
#include "gateway/framework.hpp"
#include "net/base_station.hpp"
#include "sim/scenario.hpp"

using namespace jstream;

int main(int argc, char** argv) {
  try {
    Cli cli("multi_user_gateway", "hand-wired gateway framework walkthrough");
    cli.add_flag("users", "8", "number of users (small, for readable output)");
    cli.add_flag("slots", "12", "slots to narrate");
    cli.add_flag("scheduler", "rtma", "scheduler to install in the framework");
    cli.parse(argc, argv);
    if (cli.help_requested()) {
      std::fputs(cli.help().c_str(), stdout);
      return 0;
    }

    const auto users = static_cast<std::size_t>(cli.get_int("users"));
    const auto slots = cli.get_int("slots");

    // Scenario substrate: per-user radio channels and video sessions.
    ScenarioConfig config = paper_scenario(users, /*seed=*/7);
    std::vector<UserEndpoint> endpoints = build_endpoints(config);
    const BaseStation bs(config.capacity_kbps);

    // The four framework components (Figure 1): the InfoCollector carries the
    // link fits and RRC parameters, the factory provides the Scheduler, and
    // Framework wires the DataReceiver/DataTransmitter around them.
    InfoCollector collector(config.slot, config.link, config.radio);
    Framework framework(collector, make_scheduler(cli.get_string("scheduler")),
                        SchedulingMode::kRebufferMinimization, users);

    std::printf("slot | user: sig(dBm) rate(KB/s) buf(s) -> units  energy(mJ)\n");
    for (std::int64_t slot = 0; slot < slots; ++slot) {
      const SlotOutcome outcome = framework.run_slot(slot, endpoints, bs);
      const SlotContext& ctx = framework.last_context();
      std::printf("%4lld |", static_cast<long long>(slot));
      for (std::size_t i = 0; i < users; ++i) {
        std::printf(" u%zu[%5.1f %3.0f %5.1fs ->%3lld %6.0f]", i,
                    ctx.users[i].signal_dbm, ctx.users[i].bitrate_kbps,
                    ctx.users[i].buffer_s, static_cast<long long>(outcome.units[i]),
                    outcome.energy_mj(i));
      }
      std::printf("\n");
    }

    std::printf("\nreceiver pass-through of non-video traffic: %.0f KB\n",
                framework.receiver().other_traffic_kb());
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "multi_user_gateway: error: %s\n", e.what());
    return 1;
  }
}
