// jstream_cli — the everything-runner: pick a scenario preset, a scheduler,
// optional alpha/beta anchoring and replications, and get a report (plus CSV
// export). Exercises the whole public API from one binary.
//
//   ./jstream_cli --list
//   ./jstream_cli --scenario stress --scheduler ema --beta 1.0 --reps 5
//   ./jstream_cli --scenario paper --scheduler rtma --alpha 1.0 --report --out /tmp/r
#include <cstdio>
#include <filesystem>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "sim/catalog.hpp"
#include "sim/replication.hpp"
#include "sim/report.hpp"
#include "telemetry/registry.hpp"

using namespace jstream;

int main(int argc, char** argv) {
  try {
    Cli cli("jstream_cli", "run any scheduler on any scenario preset");
    cli.add_flag("list", "false", "list scenario presets and schedulers, then exit");
    cli.add_flag("scenario", "paper", "scenario preset (see --list)");
    cli.add_flag("scheduler", "rtma", "scheduler name (see --list)");
    cli.add_flag("users", "40", "number of users");
    cli.add_flag("slots", "10000", "horizon in slots");
    cli.add_flag("seed", "42", "base RNG seed");
    cli.add_flag("alpha", "0", "RTMA: Phi = alpha * E_default (0 = unconstrained)");
    cli.add_flag("beta", "0", "EMA: calibrate V for Omega = beta * R_default "
                              "(0 = use --v directly)");
    cli.add_flag("v", "0.05", "EMA Lyapunov weight when beta is 0");
    cli.add_flag("reps", "1", "replications (seeds seed..seed+reps-1)");
    cli.add_flag("report", "false", "print the full per-user report");
    cli.add_flag("out", "", "CSV export directory (empty = off)");
    cli.add_flag("threads", "0", "worker threads (0 = hardware concurrency)");
    cli.add_flag("telemetry", "false",
                 "print the telemetry registry dump after the run (also "
                 "writes telemetry.json into --out when set)");
    cli.parse(argc, argv);
    if (cli.help_requested()) {
      std::fputs(cli.help().c_str(), stdout);
      return 0;
    }
    if (cli.get_bool("list")) {
      Table presets("scenario presets", {"name", "description"});
      for (const ScenarioPreset& preset : scenario_catalog()) {
        presets.row({preset.name, preset.description});
      }
      presets.print();
      std::printf("\nschedulers:");
      for (const std::string& name : scheduler_names()) {
        std::printf(" %s", name.c_str());
      }
      std::printf("\n");
      return 0;
    }

    ScenarioConfig scenario = make_catalog_scenario(
        cli.get_string("scenario"), static_cast<std::size_t>(cli.get_int("users")),
        static_cast<std::uint64_t>(cli.get_int("seed")));
    scenario.max_slots = cli.get_int("slots");

    ExperimentSpec spec{cli.get_string("scheduler"), cli.get_string("scheduler"),
                        scenario, {}};
    const double alpha = cli.get_double("alpha");
    const double beta = cli.get_double("beta");
    if (spec.scheduler == "rtma" && alpha > 0.0) {
      spec.options = rtma_options_for_alpha(alpha, run_default_reference(scenario));
      std::printf("[anchor] Phi = %.0f mJ (alpha = %.2f)\n",
                  spec.options.rtma.energy_budget_mj, alpha);
    }
    if ((spec.scheduler == "ema" || spec.scheduler == "ema-fast")) {
      if (beta > 0.0) {
        const DefaultReference reference = run_default_reference(scenario);
        spec.options.ema.v_weight = calibrate_v_for_rebuffer(
            scenario, beta * reference.rebuffer_per_user_slot_s);
        std::printf("[anchor] V = %.4f (beta = %.2f)\n", spec.options.ema.v_weight,
                    beta);
      } else {
        spec.options.ema.v_weight = cli.get_double("v");
      }
    }

    const auto reps = static_cast<std::size_t>(cli.get_int("reps"));
    const auto threads = static_cast<std::size_t>(cli.get_int("threads"));
    const auto finish_telemetry = [&] {
      if (!cli.get_bool("telemetry")) return;
      std::printf("\n%s", telemetry::global_registry().render_text().c_str());
      if (!cli.get_string("out").empty()) {
        std::filesystem::create_directories(cli.get_string("out"));
        const std::string path = cli.get_string("out") + "/telemetry.json";
        telemetry::global_registry().write_json(path);
        std::printf("[telemetry] wrote %s\n", path.c_str());
      }
    };
    if (reps <= 1) {
      const RunMetrics metrics = run_experiment(spec);
      if (cli.get_bool("report")) {
        std::printf("%s\n", render_report(spec.label, metrics).c_str());
      } else {
        std::printf("%s\n", summarize_run(spec.label, metrics).c_str());
      }
      if (!cli.get_string("out").empty()) {
        export_run_csv(cli.get_string("out"), spec.label, metrics);
        std::printf("[csv] wrote %s/%s_{users,slots}.csv\n",
                    cli.get_string("out").c_str(), spec.label.c_str());
      }
      finish_telemetry();
      return 0;
    }

    const ReplicationResult result = replicate_experiment(spec, reps, threads);
    Table table(spec.label + " over " + std::to_string(reps) + " seeds",
                {"metric", "mean", "ci95", "min", "max"});
    const auto row = [&](const std::string& metric, const ReplicatedMetric& m,
                         double scale, int precision) {
      table.row({metric, format_double(scale * m.summary.mean, precision),
                 "+-" + format_double(scale * m.ci95_halfwidth(), precision),
                 format_double(scale * m.summary.min, precision),
                 format_double(scale * m.summary.max, precision)});
    };
    row("PE (mJ/user-slot)", result.pe_mj, 1.0, 1);
    row("PC (ms/user-slot)", result.pc_s, 1000.0, 1);
    row("fairness", result.fairness, 1.0, 3);
    row("total energy (kJ)", result.total_energy_mj, 1e-6, 2);
    row("total rebuffer (s)", result.total_rebuffer_s, 1.0, 0);
    table.print();
    finish_telemetry();
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "jstream_cli: error: %s\n", e.what());
    return 1;
  }
}
