// Multi-cell gateway deployment: one PDN gateway managing several base
// stations independently (Section III-A). Runs the same scheduler across a
// deployment of heterogeneous cells and prints per-cell plus aggregate
// metrics.
//
//   ./multicell_deployment --cells 4 --scheduler rtma
#include <cstdio>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "sim/experiment.hpp"
#include "sim/multicell.hpp"

using namespace jstream;

int main(int argc, char** argv) {
  try {
    Cli cli("multicell_deployment", "independent per-BS frameworks under one gateway");
    cli.add_flag("cells", "4", "number of base stations");
    cli.add_flag("users", "25", "users per cell (the last cell gets double)");
    cli.add_flag("scheduler", "rtma", "scheduler installed in every cell");
    cli.add_flag("seed", "42", "base seed (cells derive their own)");
    cli.add_flag("threads", "0", "cells simulated in parallel (0 = hw concurrency)");
    cli.parse(argc, argv);
    if (cli.help_requested()) {
      std::fputs(cli.help().c_str(), stdout);
      return 0;
    }

    const auto cells = static_cast<std::size_t>(cli.get_int("cells"));
    ScenarioConfig base = paper_scenario(
        static_cast<std::size_t>(cli.get_int("users")),
        static_cast<std::uint64_t>(cli.get_int("seed")));
    MultiCellConfig deployment = MultiCellConfig::uniform(base, cells);
    // Heterogeneity: the last cell is a hotspot with twice the users.
    deployment.cells.back().users = base.users * 2;

    // Anchor RTMA's budget on the busiest cell (conservative).
    SchedulerOptions options;
    const std::string scheduler = cli.get_string("scheduler");
    if (scheduler == "rtma") {
      options = rtma_options_for_alpha(
          1.0, run_default_reference(deployment.cells.back()));
    }

    const MultiCellResult result = simulate_multicell(
        deployment, scheduler, options,
        static_cast<std::size_t>(cli.get_int("threads")));

    Table table("deployment: " + scheduler,
                {"cell", "users", "PE (mJ/us)", "PC (ms/us)", "total E (kJ)",
                 "complete"});
    for (std::size_t cell = 0; cell < result.per_cell.size(); ++cell) {
      const RunMetrics& m = result.per_cell[cell];
      table.row({std::to_string(cell), std::to_string(m.per_user.size()),
                 format_double(m.avg_energy_per_user_slot_mj(), 1),
                 format_double(1000.0 * m.avg_rebuffer_per_user_slot_s(), 1),
                 format_double(m.total_energy_mj() / 1e6, 2),
                 format_double(100.0 * m.completion_rate(), 0) + " %"});
    }
    table.row({"all", std::to_string(result.total_users()),
               format_double(result.avg_energy_per_user_slot_mj(), 1),
               format_double(1000.0 * result.avg_rebuffer_per_user_slot_s(), 1),
               format_double(result.total_energy_mj() / 1e6, 2), "-"});
    table.print();
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "multicell_deployment: error: %s\n", e.what());
    return 1;
  }
}
