// Quickstart: simulate the paper's evaluation scenario under one scheduler
// and print the headline metrics.
//
//   ./quickstart --scheduler rtma --users 40 --seed 42
//
// Walks the whole public API surface: scenario construction, scheduler
// factory, simulation, and metric summaries.
#include <cstdio>

#include "baselines/factory.hpp"
#include "common/cli.hpp"
#include "common/table.hpp"
#include "sim/simulator.hpp"

using namespace jstream;

int main(int argc, char** argv) {
  try {
    Cli cli("quickstart", "run one scheduler over the paper scenario");
    cli.add_flag("scheduler", "rtma", "one of: default, throttling, onoff, salsa, "
                                      "estreamer, rtma, ema, ema-fast");
    cli.add_flag("users", "40", "number of concurrent streaming users");
    cli.add_flag("slots", "10000", "simulation horizon (slots of 1 s)");
    cli.add_flag("seed", "42", "scenario RNG seed");
    cli.parse(argc, argv);
    if (cli.help_requested()) {
      std::fputs(cli.help().c_str(), stdout);
      return 0;
    }

    // 1. Describe the workload: N users streaming 250-500 MB videos at
    //    300-600 KB/s over a 20 MB/s base station (Section VI defaults).
    ScenarioConfig config = paper_scenario(
        static_cast<std::size_t>(cli.get_int("users")),
        static_cast<std::uint64_t>(cli.get_int("seed")));
    config.max_slots = cli.get_int("slots");

    // 2. Pick a scheduler and run the slotted simulation.
    const std::string name = cli.get_string("scheduler");
    const RunMetrics metrics = simulate(config, make_scheduler(name));

    // 3. Read out the paper's metrics.
    Table table("quickstart: " + name, {"metric", "value"});
    table.row({"slots simulated", std::to_string(metrics.slots_run)});
    table.row({"sessions completed",
               format_double(100.0 * metrics.completion_rate(), 1) + " %"});
    table.row({"avg energy per user-slot (PE)",
               format_double(metrics.avg_energy_per_user_slot_mj(), 1) + " mJ"});
    table.row({"  of which tail energy",
               format_double(metrics.avg_tail_per_user_slot_mj(), 1) + " mJ"});
    table.row({"avg rebuffering per user-slot (PC)",
               format_double(1000.0 * metrics.avg_rebuffer_per_user_slot_s(), 1) + " ms"});
    table.row({"total rebuffering",
               format_double(metrics.total_rebuffer_s(), 0) + " s"});
    table.row({"total energy",
               format_double(metrics.total_energy_mj() / 1000.0, 0) + " J"});
    table.row({"mean Jain fairness", format_double(metrics.mean_fairness(), 3)});
    table.print();
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "quickstart: error: %s\n", e.what());
    return 1;
  }
}
