// Adaptive-bitrate extension walkthrough: the same gateway schedulers serving
// DASH-style segmented clients that pick their representation per segment.
// Shows how quality, switching, rebuffering and energy trade against each
// other per (scheduler, quality policy) pair.
//
//   ./abr_streaming --users 20 --capacity 9000
#include <cstdio>

#include "abr/abr_simulator.hpp"
#include "baselines/factory.hpp"
#include "common/cli.hpp"
#include "common/table.hpp"

using namespace jstream;

int main(int argc, char** argv) {
  try {
    Cli cli("abr_streaming", "ABR clients over the gateway schedulers");
    cli.add_flag("users", "20", "number of streaming clients");
    cli.add_flag("capacity", "9000", "base-station capacity in KB/s");
    cli.add_flag("seed", "42", "scenario seed");
    cli.parse(argc, argv);
    if (cli.help_requested()) {
      std::fputs(cli.help().c_str(), stdout);
      return 0;
    }

    AbrScenarioConfig config;
    config.base = paper_scenario(static_cast<std::size_t>(cli.get_int("users")),
                                 static_cast<std::uint64_t>(cli.get_int("seed")));
    config.base.capacity_kbps = cli.get_double("capacity");

    Table table("ABR study (" + std::to_string(config.base.users) + " clients, " +
                    format_double(config.base.capacity_kbps / 1000.0, 1) + " MB/s)",
                {"scheduler", "policy", "quality (KB/s)", "switches", "rebuf (s)",
                 "QoE", "energy (kJ)"});
    for (const char* selector : {"fixed", "rate-based", "buffer-based"}) {
      for (const char* scheduler : {"default", "rtma", "ema-fast"}) {
        config.selector = selector;
        SchedulerOptions options;
        options.ema.v_weight = 0.05;
        const AbrRunMetrics m =
            simulate_abr(config, make_scheduler(scheduler, options));
        table.row({scheduler, selector, format_double(m.mean_quality_kbps(), 0),
                   format_double(m.mean_switches(), 1),
                   format_double(m.mean_rebuffer_s(), 1),
                   format_double(m.mean_qoe_score(), 0),
                   format_double(m.total_energy_mj() / 1e6, 2)});
      }
    }
    table.print();
    std::printf("\nQoE = mean quality - 600*(stall fraction) - 30*(switches/s).\n"
                "Buffer-based adaptation climbs the ladder when the gateway leaves\n"
                "headroom; under RTM scheduling the low-rate reservations keep every\n"
                "client smooth, trading peak quality for stability.\n");
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "abr_streaming: error: %s\n", e.what());
    return 1;
  }
}
