// Shows the operator-facing tuning knobs of both modes:
//   * RTM mode: sweep alpha (energy budget Phi = alpha * E_default) and watch
//     the rebuffering/energy trade move (paper Fig. 4 mechanics);
//   * EM mode: sweep the Lyapunov weight V and watch Theorem 1's trade-off,
//     then calibrate V for a target rebuffering bound Omega = beta * R_default.
#include <cstdio>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "sim/experiment.hpp"

using namespace jstream;

int main(int argc, char** argv) {
  try {
    Cli cli("energy_budget_tuning", "alpha / V tuning walkthrough");
    cli.add_flag("users", "30", "number of users");
    cli.add_flag("seed", "42", "scenario seed");
    cli.parse(argc, argv);
    if (cli.help_requested()) {
      std::fputs(cli.help().c_str(), stdout);
      return 0;
    }

    ScenarioConfig scenario = paper_scenario(
        static_cast<std::size_t>(cli.get_int("users")),
        static_cast<std::uint64_t>(cli.get_int("seed")));

    // Reference run of the uncoordinated default strategy.
    const DefaultReference reference = run_default_reference(scenario);
    std::printf("default reference: PE=%.1f mJ/user-slot, PC=%.1f ms/user-slot, "
                "serving-slot energy=%.0f mJ\n\n",
                reference.energy_per_user_slot_mj,
                1000.0 * reference.rebuffer_per_user_slot_s,
                reference.trans_per_tx_slot_mj);

    Table rtm("RTM mode: energy budget Phi = alpha * E_default",
              {"alpha", "PE (mJ/user-slot)", "PC (ms/user-slot)", "fairness"});
    for (double alpha : {0.8, 0.9, 1.0, 1.1, 1.2}) {
      ExperimentSpec spec;
      spec.label = "rtma";
      spec.scheduler = "rtma";
      spec.scenario = scenario;
      spec.options = rtma_options_for_alpha(alpha, reference);
      const RunMetrics metrics = run_experiment(spec, /*keep_series=*/false);
      rtm.row(format_double(alpha, 1),
              {metrics.avg_energy_per_user_slot_mj(),
               1000.0 * metrics.avg_rebuffer_per_user_slot_s(),
               metrics.mean_fairness()},
              1);
    }
    rtm.print();
    std::printf("\n");

    Table em("EM mode: Lyapunov weight V",
             {"V", "PE (mJ/user-slot)", "PC (ms/user-slot)", "fairness"});
    for (double v : {0.005, 0.02, 0.05, 0.1, 0.2}) {
      ExperimentSpec spec;
      spec.label = "ema";
      spec.scheduler = "ema";
      spec.scenario = scenario;
      spec.options.ema.v_weight = v;
      const RunMetrics metrics = run_experiment(spec, /*keep_series=*/false);
      em.row(format_double(v, 3),
             {metrics.avg_energy_per_user_slot_mj(),
              1000.0 * metrics.avg_rebuffer_per_user_slot_s(),
              metrics.mean_fairness()},
             1);
    }
    em.print();

    // Calibrate V so EMA's rebuffering matches the default's (beta = 1).
    const double omega = reference.rebuffer_per_user_slot_s;
    const double v_star = calibrate_v_for_rebuffer(scenario, omega);
    std::printf("\ncalibrated V for Omega = R_default (beta = 1): V* = %.4f\n", v_star);
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "energy_budget_tuning: error: %s\n", e.what());
    return 1;
  }
}
